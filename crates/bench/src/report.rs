//! Table rendering, CSV export and shard-CSV merging for the experiment
//! harnesses.
//!
//! Sharded runs (`--shard K/N`) write *unit-tagged* CSVs: every row
//! carries the index of the experiment unit that produced it in a leading
//! `unit` column. Because each unit is owned by exactly one shard and its
//! rows are a pure function of the unit index, [`merge_csvs`] can
//! reassemble the shards' partial files into the exact byte sequence the
//! unsharded run writes: sort rows by unit, strip the tag column.

use std::collections::BTreeSet;
use std::fmt::Display;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A simple markdown-ish table printer.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    /// Experiment unit that produced each row (for sharded CSV tagging).
    units: Vec<usize>,
    cur_unit: usize,
}

impl Table {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Table {
        Table {
            header: header.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
            units: Vec::new(),
            cur_unit: 0,
        }
    }

    /// Set the experiment unit subsequent rows belong to (defaults to 0;
    /// only observable in sharded CSV output).
    pub fn unit(&mut self, unit: usize) -> &mut Table {
        self.cur_unit = unit;
        self
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self.units.push(self.cur_unit);
        self
    }

    /// Render to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join(" | ")
        };
        println!("{}", fmt_row(&self.header));
        println!("{}", widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>().join("-|-"));
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }

    /// Write as CSV under `target/repro/<name>.csv`, reporting (but not
    /// aborting on) I/O failures — a harness run's printed tables are
    /// still useful when the filesystem is read-only.
    pub fn write_csv(&self, name: &str) {
        match self.try_write_csv(name) {
            Ok(path) => println!("[csv] {}", path.display()),
            Err(e) => eprintln!("warning: could not write {name}.csv: {e}"),
        }
    }

    /// Write as CSV under `target/repro/<name>.csv`, returning the path
    /// written or the underlying I/O error (directory creation included).
    ///
    /// # Errors
    ///
    /// Propagates failures from creating `target/repro/` or writing the
    /// file.
    pub fn try_write_csv(&self, name: &str) -> io::Result<PathBuf> {
        self.try_write_csv_in(None, name, false)
    }

    /// Write as CSV into `dir` (`None` = the default `target/repro/`),
    /// creating the directory as needed. With `tagged`, rows carry their
    /// experiment unit in a leading `unit` column — the partial-CSV format
    /// sharded runs emit for [`merge_csvs`].
    ///
    /// # Errors
    ///
    /// Propagates failures from creating the directory or writing.
    pub fn try_write_csv_in(
        &self,
        dir: Option<&Path>,
        name: &str,
        tagged: bool,
    ) -> io::Result<PathBuf> {
        let dir = dir.map_or_else(default_repro_dir, Path::to_path_buf);
        fs::create_dir_all(&dir)
            .map_err(|e| io::Error::new(e.kind(), format!("creating {}: {e}", dir.display())))?;
        let path = dir.join(format!("{name}.csv"));
        write_atomic(&path, self.to_csv(tagged).as_bytes())?;
        Ok(path)
    }

    /// The CSV serialization (see [`Table::try_write_csv_in`] for
    /// `tagged`).
    pub fn to_csv(&self, tagged: bool) -> String {
        let mut out = String::new();
        if tagged {
            out.push_str("unit,");
        }
        out.push_str(&self.header.join(","));
        out.push('\n');
        for (row, unit) in self.rows.iter().zip(&self.units) {
            if tagged {
                out.push_str(&unit.to_string());
                out.push(',');
            }
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }
}

/// Write `contents` to `path` atomically: write a sibling temp file,
/// then rename over the destination. A process killed mid-write leaves
/// at worst a stray temp file — readers (and shard merges) never observe
/// a torn or half-written CSV at `path`.
///
/// # Errors
///
/// Propagates failures from writing the temp file or renaming it.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let file_name = path.file_name().map_or_else(String::new, |n| n.to_string_lossy().into_owned());
    let tmp = dir.join(format!(".tmp-{}-{file_name}", std::process::id()));
    fs::write(&tmp, contents)
        .map_err(|e| io::Error::new(e.kind(), format!("writing {}: {e}", tmp.display())))?;
    fs::rename(&tmp, path).map_err(|e| {
        let _ = fs::remove_file(&tmp);
        io::Error::new(e.kind(), format!("renaming {} into place: {e}", tmp.display()))
    })
}

/// Validate one unit-tagged partial CSV before trusting it in a merge: a
/// torn file (killed writer, truncated copy, half-sent frame) must be
/// rejected here, not silently merged into corrupt output.
///
/// Checks: non-empty; a `unit,`-tagged header; a trailing newline (a
/// torn write cuts mid-row, losing it); and on every row a parseable
/// unit tag plus exactly the header's field count.
///
/// # Errors
///
/// Returns a description of the first defect found.
pub fn validate_partial_csv(text: &str) -> Result<(), String> {
    if text.is_empty() {
        return Err("file is empty".to_owned());
    }
    if !text.ends_with('\n') {
        return Err("file is truncated (no trailing newline)".to_owned());
    }
    let mut lines = text.lines();
    let header = lines.next().expect("non-empty text has a first line");
    if !header.starts_with("unit,") {
        return Err(format!("missing the unit tag column in header {header:?}"));
    }
    let fields = header.split(',').count();
    for (ri, line) in lines.enumerate() {
        let (unit, _) =
            line.split_once(',').ok_or_else(|| format!("row {ri} has no unit tag: {line:?}"))?;
        if unit.parse::<usize>().is_err() {
            return Err(format!("row {ri}: bad unit tag {unit:?}"));
        }
        let got = line.split(',').count();
        if got != fields {
            return Err(format!("row {ri} has {got} fields, header has {fields} (torn write?)"));
        }
    }
    Ok(())
}

/// The default CSV output directory, `<target>/repro` (not created).
pub fn default_repro_dir() -> PathBuf {
    PathBuf::from(std::env::var("CARGO_TARGET_DIR").unwrap_or_else(|_| "target".to_owned()))
        .join("repro")
}

/// Location of a CSV in the output directory (`target/repro/`), creating
/// the directory if needed.
///
/// # Errors
///
/// Propagates the `create_dir_all` failure instead of swallowing it — a
/// missing `target/repro/` must not silently drop every CSV.
pub fn repro_path(name: &str) -> io::Result<PathBuf> {
    let dir = default_repro_dir();
    fs::create_dir_all(&dir)
        .map_err(|e| io::Error::new(e.kind(), format!("creating {}: {e}", dir.display())))?;
    Ok(dir.join(format!("{name}.csv")))
}

/// Merge unit-tagged shard CSVs (see [`Table::try_write_csv_in`]) into
/// the plain CSV the unsharded run writes.
///
/// Every part must share the same tagged header; rows are ordered by
/// their unit tag (rows of one unit keep their within-part order) and the
/// tag column is stripped. The result is independent of the order the
/// parts are passed in, because each unit's rows live in exactly one part
/// — two parts claiming the same unit is a sharding bug and an error.
///
/// # Errors
///
/// Returns a description of malformed input: empty or truncated part,
/// missing or mismatched header, untagged or torn row, or a unit present
/// in several parts.
pub fn merge_csvs(parts: &[String]) -> Result<String, String> {
    if parts.is_empty() {
        return Err("no shard CSVs to merge".to_owned());
    }
    let mut header: Option<&str> = None;
    // (unit, within-part row index, part index, row text)
    let mut rows: Vec<(usize, usize, usize, &str)> = Vec::new();
    for (pi, part) in parts.iter().enumerate() {
        validate_partial_csv(part).map_err(|e| format!("shard CSV {pi}: {e}"))?;
        let mut lines = part.lines();
        let h = lines.next().ok_or_else(|| format!("shard CSV {pi} is empty"))?;
        let h = h
            .strip_prefix("unit,")
            .ok_or_else(|| format!("shard CSV {pi} is missing the unit tag column"))?;
        match header {
            None => header = Some(h),
            Some(prev) if prev != h => {
                return Err(format!("shard CSV {pi} header {h:?} does not match {prev:?}"));
            }
            Some(_) => {}
        }
        for (ri, line) in lines.enumerate() {
            let (unit, rest) = line
                .split_once(',')
                .ok_or_else(|| format!("shard CSV {pi} row {ri} has no unit tag"))?;
            let unit = unit
                .parse::<usize>()
                .map_err(|_| format!("shard CSV {pi} row {ri}: bad unit tag {unit:?}"))?;
            rows.push((unit, ri, pi, rest));
        }
    }
    rows.sort_by_key(|(unit, ri, _, _)| (*unit, *ri));
    for w in rows.windows(2) {
        if w[0].0 == w[1].0 && w[0].2 != w[1].2 {
            return Err(format!("unit {} appears in shard CSVs {} and {}", w[0].0, w[0].2, w[1].2));
        }
    }
    let mut out = header.expect("at least one part parsed").to_owned();
    out.push('\n');
    for (_, _, _, rest) in rows {
        out.push_str(rest);
        out.push('\n');
    }
    Ok(out)
}

/// Merge every `*.csv` found in any of `shard_dirs` into `dest`
/// (creating it), returning the merged paths in name order. Files are
/// discovered by name union across the shard directories, so experiments
/// wholly owned by one shard pass straight through.
///
/// # Errors
///
/// Propagates I/O failures; malformed shard CSVs surface as
/// [`io::ErrorKind::InvalidData`].
pub fn merge_shard_dirs(shard_dirs: &[PathBuf], dest: &Path) -> io::Result<Vec<PathBuf>> {
    let mut names: BTreeSet<String> = BTreeSet::new();
    for dir in shard_dirs {
        let entries = match fs::read_dir(dir) {
            Ok(e) => e,
            Err(_) => continue, // a shard that owned nothing wrote nothing
        };
        for entry in entries {
            let name = entry?.file_name().to_string_lossy().into_owned();
            if name.ends_with(".csv") {
                names.insert(name);
            }
        }
    }
    fs::create_dir_all(dest)?;
    let mut written = Vec::with_capacity(names.len());
    for name in names {
        // A missing file just means that shard owned none of the
        // experiment's units; any other read failure must surface, or the
        // merge would silently drop that shard's rows.
        let mut parts: Vec<String> = Vec::with_capacity(shard_dirs.len());
        for dir in shard_dirs {
            match fs::read_to_string(dir.join(&name)) {
                Ok(part) => {
                    // Reject torn or header-less partials by name before
                    // they can poison the merged output.
                    validate_partial_csv(&part).map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("{}: {e}", dir.join(&name).display()),
                        )
                    })?;
                    parts.push(part);
                }
                Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                Err(e) => {
                    return Err(io::Error::new(
                        e.kind(),
                        format!("reading {}: {e}", dir.join(&name).display()),
                    ));
                }
            }
        }
        let merged = merge_csvs(&parts)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{name}: {e}")))?;
        let path = dest.join(&name);
        write_atomic(&path, merged.as_bytes())?;
        written.push(path);
    }
    Ok(written)
}

/// Format a float with the given precision.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Format any displayable value.
pub fn s(v: impl Display) -> String {
    v.to_string()
}

/// Print a section banner.
pub fn banner(title: &str) {
    println!();
    println!("=== {title} ===");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tagged_csv(rows: &[(usize, &str)]) -> String {
        let mut t = Table::new(&["a", "b"]);
        for (unit, row) in rows {
            let cells: Vec<String> = row.split(',').map(str::to_owned).collect();
            t.unit(*unit).row(cells);
        }
        t.to_csv(true)
    }

    #[test]
    fn merge_interleaves_rows_by_unit() {
        let full = {
            let mut t = Table::new(&["a", "b"]);
            for i in 0..5 {
                t.unit(i).row(vec![format!("x{i}"), format!("y{i}")]);
            }
            t.to_csv(false)
        };
        let even = tagged_csv(&[(0, "x0,y0"), (2, "x2,y2"), (4, "x4,y4")]);
        let odd = tagged_csv(&[(1, "x1,y1"), (3, "x3,y3")]);
        assert_eq!(merge_csvs(&[even.clone(), odd.clone()]).unwrap(), full);
        // Part order is irrelevant.
        assert_eq!(merge_csvs(&[odd, even]).unwrap(), full);
    }

    #[test]
    fn merge_keeps_multi_row_units_in_order() {
        let part = tagged_csv(&[(0, "r1,s1"), (0, "r2,s2"), (0, "r3,s3")]);
        let merged = merge_csvs(&[part]).unwrap();
        assert_eq!(merged, "a,b\nr1,s1\nr2,s2\nr3,s3\n");
    }

    #[test]
    fn merge_rejects_malformed_parts() {
        let good = tagged_csv(&[(0, "x,y")]);
        assert!(merge_csvs(&[]).is_err(), "no parts");
        assert!(merge_csvs(&[String::new()]).is_err(), "empty part");
        assert!(merge_csvs(&["a,b\nx,y\n".to_owned()]).is_err(), "untagged header");
        let other_header = {
            let mut t = Table::new(&["a", "c"]);
            t.unit(1).row(vec!["x".into(), "y".into()]);
            t.to_csv(true)
        };
        assert!(merge_csvs(&[good.clone(), other_header]).is_err(), "header mismatch");
        let dup = tagged_csv(&[(0, "q,r")]);
        assert!(merge_csvs(&[good, dup]).is_err(), "unit owned twice");
    }

    #[test]
    fn merge_rejects_truncated_and_torn_parts() {
        let good = tagged_csv(&[(0, "x,y"), (1, "p,q")]);
        // A torn write cuts mid-row: no trailing newline.
        let truncated = good.trim_end_matches('\n').to_owned();
        let err = merge_csvs(&[truncated]).unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        // A torn row that still ends in a newline is caught by the field
        // count.
        let torn_row = "unit,a,b\n0,x,y\n1,p\n".to_owned();
        let err = merge_csvs(&[torn_row]).unwrap_err();
        assert!(err.contains("torn") || err.contains("fields"), "{err}");
    }

    #[test]
    fn validate_partial_csv_names_each_defect() {
        assert!(validate_partial_csv("unit,a,b\n0,x,y\n").is_ok());
        for (text, needle) in [
            ("", "empty"),
            ("a,b\n0,x\n", "unit tag column"),
            ("unit,a,b\n0,x,y", "truncated"),
            ("unit,a,b\nnope\n", "unit tag"),
            ("unit,a,b\nx,y,z\n", "bad unit tag"),
            ("unit,a,b\n0,x\n", "fields"),
        ] {
            let err = validate_partial_csv(text).unwrap_err();
            assert!(err.contains(needle), "{text:?}: {err}");
        }
    }

    #[test]
    fn merge_shard_dirs_names_the_offending_file() {
        let base = std::env::temp_dir().join(format!("smack-report-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&base);
        let good_dir = base.join("good");
        let bad_dir = base.join("bad");
        fs::create_dir_all(&good_dir).unwrap();
        fs::create_dir_all(&bad_dir).unwrap();
        fs::write(good_dir.join("x.csv"), tagged_csv(&[(0, "x,y")])).unwrap();
        // The torn partial: killed mid-write, last row cut short.
        fs::write(bad_dir.join("x.csv"), "unit,a,b\n1,p").unwrap();
        let err = merge_shard_dirs(&[good_dir, bad_dir.clone()], &base.join("merged"))
            .expect_err("torn partial must be rejected");
        let msg = err.to_string();
        assert!(
            msg.contains("bad") && msg.contains("x.csv") && msg.contains("truncated"),
            "error must name the torn file: {msg}"
        );
        let _ = fs::remove_dir_all(&base);
    }

    #[test]
    fn atomic_writes_land_complete_and_leave_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("smack-report-atomic-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        write_atomic(&path, b"a,b\n1,2\n").unwrap();
        write_atomic(&path, b"a,b\n3,4\n").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "a,b\n3,4\n");
        let names: Vec<String> = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, vec!["t.csv"], "no stray temp files");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn tagged_and_plain_serializations_agree_modulo_tags() {
        let mut t = Table::new(&["k", "v"]);
        t.unit(3).row(vec!["a".into(), "b".into()]);
        t.unit(7).row(vec!["c".into(), "d".into()]);
        assert_eq!(t.to_csv(false), "k,v\na,b\nc,d\n");
        assert_eq!(t.to_csv(true), "unit,k,v\n3,a,b\n7,c,d\n");
    }
}
