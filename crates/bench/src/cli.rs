//! The one shared CLI behind every harness binary.
//!
//! All fourteen binaries (`all`, `fig1..fig6`, `table1..table5`,
//! `fingerprint`, `ablations`) are thin shims over [`run`]: they differ
//! only in their default selection. Experiments are looked up by name in
//! the [`crate::registry`], so `all fig5 table2` runs exactly those two
//! and `--list` enumerates everything.
//!
//! ```text
//! all [EXPERIMENT..] [--full] [--threads N] [--shard K/N] [--shards N]
//!     [--out DIR] [--tau-jitter N] [--merge DIR.. ] [--list]
//! ```
//!
//! * `--shard K/N` — run only the units this shard owns, writing
//!   unit-tagged partial CSVs (merge them with `--merge`).
//! * `--shards N` — orchestrate: spawn one `--shard k/N` child process
//!   per shard (sharing the persistent calibration cache), then merge the
//!   partial CSVs into the output directory — bit-identical to the
//!   unsharded run.
//! * `--merge DIR..` — merge previously written shard directories.
//! * `--out DIR` — CSV output directory (default `target/repro/`).
//! * `--tau-jitter N` — jitter the fig5/table2 exposure window by ±N
//!   cycles per trace (default 0, the fixed historical window).
//!
//! The persistent calibration cache lives at `SMACK_CALIB_DIR` when set,
//! else `<out>/calib/`; every process attaches it, so a shard spawned
//! after another has warmed the cache loads calibrations instead of
//! recomputing them.

use std::path::PathBuf;
use std::process::ExitCode;

use smack::session::Sessions;

use crate::registry::{self, Experiment, Group, RunSpec};
use crate::report;
use crate::runner::{Runner, Shard};
use crate::Mode;

/// What a binary runs when no experiment names are given.
#[derive(Copy, Clone, Debug)]
pub enum Selection {
    /// The paper artifacts (the `all` binary).
    Paper,
    /// Every ablation (the `ablations` binary).
    Ablations,
    /// One named experiment (the per-figure shims).
    Named(&'static str),
}

/// Parsed command line.
#[derive(Clone, Debug, PartialEq)]
struct Args {
    names: Vec<String>,
    mode: Mode,
    threads: Option<usize>,
    shard: Shard,
    shards: Option<usize>,
    out: Option<PathBuf>,
    tau_jitter: u64,
    merge: bool,
    list: bool,
}

const USAGE: &str = "usage: <bin> [EXPERIMENT..] [--full] [--threads N] [--shard K/N] \
                     [--shards N] [--out DIR] [--tau-jitter N] [--merge DIR..] [--list]";

fn parse(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        names: Vec::new(),
        mode: Mode::Quick,
        threads: None,
        shard: Shard::solo(),
        shards: None,
        out: None,
        tau_jitter: 0,
        merge: false,
        list: false,
    };
    let mut it = argv.iter().peekable();
    let value_of = |flag: &str,
                    it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                    arg: &str|
     -> Result<String, String> {
        if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
            return Ok(v.to_owned());
        }
        it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => args.mode = Mode::Full,
            "--list" => args.list = true,
            "--merge" => args.merge = true,
            a if a == "--threads" || a.starts_with("--threads=") => {
                let v = value_of("--threads", &mut it, a)?;
                let n = v.parse::<usize>().ok().filter(|n| *n > 0);
                args.threads = Some(n.ok_or_else(|| format!("bad --threads value `{v}`"))?);
            }
            a if a == "--shard" || a.starts_with("--shard=") => {
                let v = value_of("--shard", &mut it, a)?;
                args.shard = Shard::parse(&v)
                    .ok_or_else(|| format!("bad --shard value `{v}` (want K/N)"))?;
            }
            a if a == "--shards" || a.starts_with("--shards=") => {
                let v = value_of("--shards", &mut it, a)?;
                let n = v.parse::<usize>().ok().filter(|n| *n > 0);
                args.shards = Some(n.ok_or_else(|| format!("bad --shards value `{v}`"))?);
            }
            a if a == "--out" || a.starts_with("--out=") => {
                args.out = Some(PathBuf::from(value_of("--out", &mut it, a)?));
            }
            a if a == "--tau-jitter" || a.starts_with("--tau-jitter=") => {
                let v = value_of("--tau-jitter", &mut it, a)?;
                args.tau_jitter =
                    v.parse::<u64>().map_err(|_| format!("bad --tau-jitter value `{v}`"))?;
            }
            a if a.starts_with("--") => return Err(format!("unknown flag `{a}`")),
            name => args.names.push(name.to_owned()),
        }
    }
    if args.merge && (args.shards.is_some() || !args.shard.is_solo()) {
        return Err("--merge cannot be combined with --shard/--shards".to_owned());
    }
    if args.shards.is_some() && !args.shard.is_solo() {
        return Err("--shards spawns its own --shard children".to_owned());
    }
    Ok(args)
}

/// Resolve the experiments to run: explicit names, else the binary's
/// default selection.
fn resolve(names: &[String], default: Selection) -> Result<Vec<&'static Experiment>, String> {
    if names.is_empty() {
        return Ok(match default {
            Selection::Paper => registry::group(Group::Paper),
            Selection::Ablations => registry::group(Group::Ablation),
            Selection::Named(name) => vec![registry::find(name).ok_or_else(|| {
                format!("this binary's default experiment `{name}` is not registered")
            })?],
        });
    }
    names
        .iter()
        .map(|n| {
            registry::find(n).ok_or_else(|| {
                let known: Vec<&str> = registry::registry().iter().map(|e| e.name).collect();
                format!("unknown experiment `{n}` (known: {})", known.join(", "))
            })
        })
        .collect()
}

fn print_list() {
    let mut t = report::Table::new(&[
        "name",
        "group",
        "units (quick)",
        "units (full)",
        "csv files",
        "title",
    ]);
    for e in registry::registry() {
        t.row(vec![
            e.name.to_owned(),
            format!("{:?}", e.group),
            (e.units)(Mode::Quick).to_string(),
            (e.units)(Mode::Full).to_string(),
            e.csvs.join(" "),
            e.title.to_owned(),
        ]);
    }
    t.print();
}

/// The calibration-cache directory for this run: `SMACK_CALIB_DIR` when
/// set, else `<out root>/calib`.
fn calib_dir(out_root: &std::path::Path) -> PathBuf {
    std::env::var_os("SMACK_CALIB_DIR")
        .filter(|v| !v.is_empty())
        .map_or_else(|| out_root.join("calib"), PathBuf::from)
}

/// Orchestrate `--shards N`: spawn one child per shard (same selection,
/// same flags, `--shard k/N`, its own `--out <root>/shards/shard-k`,
/// and the shared calibration cache via `SMACK_CALIB_DIR`), then merge
/// the unit-tagged partial CSVs into the output root. Children write
/// their output to `<shard dir>/shard.log` (echoed after completion), so
/// a chatty full-mode child never blocks on a pipe while the others run.
fn run_sharded(
    args: &Args,
    n: usize,
    selection: &[&Experiment],
    out_root: &std::path::Path,
) -> Result<(), String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    let calib = calib_dir(out_root);
    let mut children = Vec::new();
    let total = std::time::Instant::now();
    for k in 1..=n {
        let shard_dir = out_root.join("shards").join(format!("shard-{k}"));
        std::fs::create_dir_all(&shard_dir)
            .map_err(|e| format!("creating {}: {e}", shard_dir.display()))?;
        let log_path = shard_dir.join("shard.log");
        let log = std::fs::File::create(&log_path)
            .map_err(|e| format!("creating {}: {e}", log_path.display()))?;
        let log_err = log.try_clone().map_err(|e| format!("cloning log handle: {e}"))?;
        let mut cmd = std::process::Command::new(&exe);
        cmd.args(selection.iter().map(|e| e.name))
            .arg(format!("--shard={k}/{n}"))
            .arg(format!("--out={}", shard_dir.display()))
            .arg(format!("--tau-jitter={}", args.tau_jitter))
            .env("SMACK_CALIB_DIR", &calib)
            .stdout(log)
            .stderr(log_err);
        if args.mode == Mode::Full {
            cmd.arg("--full");
        }
        if let Some(t) = args.threads {
            cmd.arg(format!("--threads={t}"));
        }
        let child = cmd.spawn().map_err(|e| format!("spawning shard {k}/{n}: {e}"))?;
        children.push((k, shard_dir, log_path, child));
    }
    let mut shard_dirs = Vec::new();
    for (k, shard_dir, log_path, mut child) in children {
        let status = child.wait().map_err(|e| format!("shard {k}/{n}: {e}"))?;
        println!("──── shard {k}/{n} ────");
        print!("{}", std::fs::read_to_string(&log_path).unwrap_or_default());
        if !status.success() {
            return Err(format!("shard {k}/{n} failed with {status}"));
        }
        shard_dirs.push(shard_dir);
    }
    let merged = report::merge_shard_dirs(&shard_dirs, out_root)
        .map_err(|e| format!("merging shard CSVs: {e}"))?;
    report::banner("sharded run");
    println!(
        "{n} shard processes, wall {:.1} ms; calibration cache: {}",
        total.elapsed().as_secs_f64() * 1e3,
        calib.display()
    );
    for path in &merged {
        println!("[csv] {} (merged)", path.display());
    }
    Ok(())
}

/// Merge previously written shard directories (`--merge DIR..`).
fn run_merge(dirs: &[String], out_root: &std::path::Path) -> Result<(), String> {
    if dirs.len() < 2 {
        return Err("--merge needs at least two shard directories".to_owned());
    }
    let dirs: Vec<PathBuf> = dirs.iter().map(PathBuf::from).collect();
    let merged = report::merge_shard_dirs(&dirs, out_root)
        .map_err(|e| format!("merging shard CSVs: {e}"))?;
    for path in &merged {
        println!("[csv] {} (merged)", path.display());
    }
    Ok(())
}

/// Process entry point shared by every harness binary.
pub fn run(default: Selection) -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run_inner(&argv, default) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_inner(argv: &[String], default: Selection) -> Result<(), String> {
    let args = parse(argv)?;
    if args.list {
        print_list();
        return Ok(());
    }
    let out_root = args.out.clone().unwrap_or_else(report::default_repro_dir);
    if args.merge {
        return run_merge(&args.names, &out_root);
    }
    let selection = resolve(&args.names, default)?;
    match args.shards {
        // One shard of one is just the unsharded run — no child process,
        // no tagged CSVs, nothing to merge.
        Some(1) | None => {}
        Some(n) => return run_sharded(&args, n, &selection, &out_root),
    }

    // Persistent calibration cache: attach before the first experiment so
    // every calibration this process computes is written through, and
    // everything an earlier process computed is loaded instead.
    Sessions::global().attach_disk_cache(calib_dir(&out_root));

    let runner =
        args.threads.map_or_else(Runner::from_env, Runner::with_threads).with_shard(args.shard);
    let spec =
        RunSpec { mode: args.mode, runner, out_dir: args.out.clone(), tau_jitter: args.tau_jitter };
    let times = registry::run_selection(&selection, &spec);

    if selection.len() > 1 {
        report::banner("wall time");
        let total: std::time::Duration = times.iter().map(|(_, d)| *d).sum();
        let mut table = report::Table::new(&["figure", "wall ms", "share"]);
        for (name, d) in &times {
            table.row(vec![
                report::s(name),
                report::f(d.as_secs_f64() * 1e3, 1),
                format!("{:.0}%", d.as_secs_f64() / total.as_secs_f64().max(1e-9) * 100.0),
            ]);
        }
        table.row(vec!["total".to_owned(), report::f(total.as_secs_f64() * 1e3, 1), String::new()]);
        table.print();
    }
    let cal = Sessions::global().calibrations();
    println!(
        "[calib] {} in-memory hits, {} disk hits, {} computed ({})",
        cal.hits(),
        cal.disk_hits(),
        cal.misses(),
        cal.disk_dir().map_or_else(|| "no disk cache".to_owned(), |d| d.display().to_string())
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| (*a).to_owned()).collect()
    }

    #[test]
    fn parses_flags_in_both_spellings() {
        let a = parse(&strings(&["fig5", "--full", "--threads", "4", "--shard=2/4"]))
            .expect("--full, --threads N, and --shard K/N should all parse");
        assert_eq!(a.names, vec!["fig5"]);
        assert_eq!(a.mode, Mode::Full);
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.shard, Shard::new(1, 4));

        let b = parse(&strings(&["--threads=8", "--out", "x/y", "--tau-jitter=32"]))
            .expect("--threads=N, --out DIR, and --tau-jitter=N should all parse");
        assert_eq!(b.threads, Some(8));
        assert_eq!(b.out, Some(PathBuf::from("x/y")));
        assert_eq!(b.tau_jitter, 32);
        assert_eq!(b.mode, Mode::Quick);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse(&strings(&["--threads", "0"])).is_err());
        assert!(parse(&strings(&["--threads", "zero"])).is_err());
        assert!(parse(&strings(&["--shard", "5/4"])).is_err());
        assert!(parse(&strings(&["--wat"])).is_err());
        assert!(parse(&strings(&["--merge", "--shards", "2"])).is_err());
        assert!(parse(&strings(&["--shards", "2", "--shard", "1/2"])).is_err());
    }

    #[test]
    fn resolves_defaults_and_names() {
        let paper =
            resolve(&[], Selection::Paper).expect("no names + Paper default should resolve");
        assert_eq!(paper.len(), 11);
        let abl = resolve(&[], Selection::Ablations)
            .expect("no names + Ablations default should resolve");
        assert!(abl.len() >= 7);
        let named = resolve(&[], Selection::Named("fig5"))
            .expect("the registered default experiment `fig5` should resolve");
        assert_eq!(named[0].name, "fig5");
        let picked = resolve(&strings(&["table2", "fig5"]), Selection::Paper)
            .expect("explicit names `table2 fig5` should resolve");
        assert_eq!(picked.iter().map(|e| e.name).collect::<Vec<_>>(), ["table2", "fig5"]);
        assert!(resolve(&strings(&["nope"]), Selection::Paper).is_err());
    }
}
