//! The one shared CLI behind every harness binary.
//!
//! All fourteen binaries (`all`, `fig1..fig6`, `table1..table5`,
//! `fingerprint`, `ablations`) are thin shims over [`run`]: they differ
//! only in their default selection. Experiments are looked up by name in
//! the [`crate::registry`], so `all fig5 table2` runs exactly those two
//! and `--list` enumerates everything.
//!
//! ```text
//! all [EXPERIMENT..] [--full] [--threads N] [--shard K/N] [--shards N]
//!     [--out DIR] [--tau-jitter N] [--merge DIR.. ] [--list]
//! all coordinate [EXPERIMENT..] [--workers N] [--addr HOST:PORT]
//!     [--lease-ms N] [--grace-ms N] [--timeout-ms N] [common flags]
//! all work --connect HOST:PORT [--threads N]
//! ```
//!
//! * `--shard K/N` — run only the units this shard owns, writing
//!   unit-tagged partial CSVs (merge them with `--merge`).
//! * `--shards N` — distribute: run the fault-tolerant experiment
//!   service ([`crate::service`]) with N spawned worker processes, then
//!   merge the unit-tagged partial CSVs into the output directory —
//!   bit-identical to the unsharded run even under worker crashes.
//! * `coordinate` — run the service coordinator explicitly: `--workers
//!   N` spawns a fleet (0 = wait for external workers, degrading to
//!   in-process execution after `--grace-ms`), `--addr` picks the listen
//!   address, `--lease-ms` the heartbeat deadline and `--timeout-ms` the
//!   whole-run wall-clock bound.
//! * `work` — run a worker: connect to a coordinator, execute leased
//!   units, stream partial CSVs back. Mode and τ jitter arrive with each
//!   lease, so workers take no experiment flags.
//! * `--merge DIR..` — merge previously written shard directories.
//! * `--out DIR` — CSV output directory (default `target/repro/`).
//! * `--tau-jitter N` — jitter the fig5/table2 exposure window by ±N
//!   cycles per trace (default 0, the fixed historical window).
//!
//! The persistent calibration cache lives at `SMACK_CALIB_DIR` when set,
//! else `<out>/calib/`; every process attaches it, so a shard spawned
//! after another has warmed the cache loads calibrations instead of
//! recomputing them.

use std::path::PathBuf;
use std::process::ExitCode;

use smack::session::Sessions;

use crate::registry::{self, Experiment, Group, RunSpec};
use crate::report;
use crate::runner::{Runner, Shard};
use crate::service::chaos::ChaosPlan;
use crate::service::coordinator::{
    Service, ServiceConfig, DEFAULT_GRACE_MS, DEFAULT_LEASE_MS, DEFAULT_TIMEOUT_MS,
};
use crate::service::worker::{run_worker, WorkerConfig};
use crate::Mode;

/// What a binary runs when no experiment names are given.
#[derive(Copy, Clone, Debug)]
pub enum Selection {
    /// The paper artifacts (the `all` binary).
    Paper,
    /// Every ablation (the `ablations` binary).
    Ablations,
    /// One named experiment (the per-figure shims).
    Named(&'static str),
}

/// The subcommand: a plain experiment run, the service coordinator, or
/// a service worker.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum Cmd {
    /// Run experiments in this process (possibly via `--shards N`).
    Run,
    /// Run the experiment-service coordinator (`coordinate`).
    Coordinate,
    /// Run an experiment-service worker (`work`).
    Work,
}

/// Parsed command line.
#[derive(Clone, Debug, PartialEq)]
struct Args {
    cmd: Cmd,
    names: Vec<String>,
    mode: Mode,
    threads: Option<usize>,
    shard: Shard,
    shards: Option<usize>,
    out: Option<PathBuf>,
    tau_jitter: u64,
    merge: bool,
    list: bool,
    addr: Option<String>,
    connect: Option<String>,
    workers: Option<usize>,
    lease_ms: u64,
    grace_ms: u64,
    timeout_ms: u64,
}

const USAGE: &str = "usage: <bin> [EXPERIMENT..] [--full] [--threads N] [--shard K/N] \
                     [--shards N] [--out DIR] [--tau-jitter N] [--merge DIR..] [--list]\n\
       <bin> coordinate [EXPERIMENT..] [--workers N] [--addr HOST:PORT] [--lease-ms N] \
                     [--grace-ms N] [--timeout-ms N] [common flags]\n\
       <bin> work --connect HOST:PORT [--threads N]";

fn parse(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        cmd: Cmd::Run,
        names: Vec::new(),
        mode: Mode::Quick,
        threads: None,
        shard: Shard::solo(),
        shards: None,
        out: None,
        tau_jitter: 0,
        merge: false,
        list: false,
        addr: None,
        connect: None,
        workers: None,
        lease_ms: DEFAULT_LEASE_MS,
        grace_ms: DEFAULT_GRACE_MS,
        timeout_ms: DEFAULT_TIMEOUT_MS,
    };
    let argv = match argv.first().map(String::as_str) {
        Some("coordinate") => {
            args.cmd = Cmd::Coordinate;
            &argv[1..]
        }
        Some("work") => {
            args.cmd = Cmd::Work;
            &argv[1..]
        }
        _ => argv,
    };
    let mut it = argv.iter().peekable();
    let value_of = |flag: &str,
                    it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                    arg: &str|
     -> Result<String, String> {
        if let Some(v) = arg.strip_prefix(&format!("{flag}=")) {
            return Ok(v.to_owned());
        }
        it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--full" => args.mode = Mode::Full,
            "--list" => args.list = true,
            "--merge" => args.merge = true,
            a if a == "--threads" || a.starts_with("--threads=") => {
                let v = value_of("--threads", &mut it, a)?;
                let n = v.parse::<usize>().ok().filter(|n| *n > 0);
                args.threads = Some(n.ok_or_else(|| format!("bad --threads value `{v}`"))?);
            }
            a if a == "--shard" || a.starts_with("--shard=") => {
                let v = value_of("--shard", &mut it, a)?;
                args.shard = Shard::parse(&v)
                    .ok_or_else(|| format!("bad --shard value `{v}` (want K/N)"))?;
            }
            a if a == "--shards" || a.starts_with("--shards=") => {
                let v = value_of("--shards", &mut it, a)?;
                let n = v.parse::<usize>().ok().filter(|n| *n > 0);
                args.shards = Some(n.ok_or_else(|| format!("bad --shards value `{v}`"))?);
            }
            a if a == "--out" || a.starts_with("--out=") => {
                args.out = Some(PathBuf::from(value_of("--out", &mut it, a)?));
            }
            a if a == "--tau-jitter" || a.starts_with("--tau-jitter=") => {
                let v = value_of("--tau-jitter", &mut it, a)?;
                args.tau_jitter =
                    v.parse::<u64>().map_err(|_| format!("bad --tau-jitter value `{v}`"))?;
            }
            a if a == "--addr" || a.starts_with("--addr=") => {
                args.addr = Some(value_of("--addr", &mut it, a)?);
            }
            a if a == "--connect" || a.starts_with("--connect=") => {
                args.connect = Some(value_of("--connect", &mut it, a)?);
            }
            a if a == "--workers" || a.starts_with("--workers=") => {
                let v = value_of("--workers", &mut it, a)?;
                args.workers =
                    Some(v.parse::<usize>().map_err(|_| format!("bad --workers value `{v}`"))?);
            }
            a if a == "--lease-ms" || a.starts_with("--lease-ms=") => {
                let v = value_of("--lease-ms", &mut it, a)?;
                let n = v.parse::<u64>().ok().filter(|n| *n > 0);
                args.lease_ms = n.ok_or_else(|| format!("bad --lease-ms value `{v}`"))?;
            }
            a if a == "--grace-ms" || a.starts_with("--grace-ms=") => {
                let v = value_of("--grace-ms", &mut it, a)?;
                args.grace_ms =
                    v.parse::<u64>().map_err(|_| format!("bad --grace-ms value `{v}`"))?;
            }
            a if a == "--timeout-ms" || a.starts_with("--timeout-ms=") => {
                let v = value_of("--timeout-ms", &mut it, a)?;
                let n = v.parse::<u64>().ok().filter(|n| *n > 0);
                args.timeout_ms = n.ok_or_else(|| format!("bad --timeout-ms value `{v}`"))?;
            }
            a if a.starts_with("--") => return Err(format!("unknown flag `{a}`")),
            name => args.names.push(name.to_owned()),
        }
    }
    if args.merge && (args.shards.is_some() || !args.shard.is_solo()) {
        return Err("--merge cannot be combined with --shard/--shards".to_owned());
    }
    if args.shards.is_some() && !args.shard.is_solo() {
        return Err("--shards spawns its own worker fleet".to_owned());
    }
    if args.connect.is_some() && args.cmd != Cmd::Work {
        return Err("--connect only makes sense for the `work` subcommand".to_owned());
    }
    match args.cmd {
        Cmd::Work => {
            if args.connect.is_none() {
                return Err("work needs --connect HOST:PORT".to_owned());
            }
            if !args.names.is_empty()
                || args.merge
                || args.shards.is_some()
                || !args.shard.is_solo()
            {
                return Err("workers take no experiments or shard flags; \
                            every run parameter arrives with its lease"
                    .to_owned());
            }
        }
        Cmd::Coordinate => {
            if args.merge || args.shards.is_some() || !args.shard.is_solo() {
                return Err("coordinate owns the whole unit space; drop --shard/--shards/--merge"
                    .to_owned());
            }
        }
        Cmd::Run => {
            if args.workers.is_some() || args.addr.is_some() {
                return Err("--workers/--addr belong to the `coordinate` subcommand \
                            (plain runs distribute with --shards N)"
                    .to_owned());
            }
        }
    }
    Ok(args)
}

/// Resolve the experiments to run: explicit names, else the binary's
/// default selection.
fn resolve(names: &[String], default: Selection) -> Result<Vec<&'static Experiment>, String> {
    if names.is_empty() {
        return Ok(match default {
            Selection::Paper => registry::group(Group::Paper),
            Selection::Ablations => registry::group(Group::Ablation),
            Selection::Named(name) => vec![registry::find(name).ok_or_else(|| {
                format!("this binary's default experiment `{name}` is not registered")
            })?],
        });
    }
    names
        .iter()
        .map(|n| {
            registry::find(n).ok_or_else(|| {
                let known: Vec<&str> = registry::registry().iter().map(|e| e.name).collect();
                format!("unknown experiment `{n}` (known: {})", known.join(", "))
            })
        })
        .collect()
}

fn print_list() {
    let mut t = report::Table::new(&[
        "name",
        "group",
        "units (quick)",
        "units (full)",
        "csv files",
        "title",
    ]);
    for e in registry::registry() {
        t.row(vec![
            e.name.to_owned(),
            format!("{:?}", e.group),
            (e.units)(Mode::Quick).to_string(),
            (e.units)(Mode::Full).to_string(),
            e.csvs.join(" "),
            e.title.to_owned(),
        ]);
    }
    t.print();
}

/// The calibration-cache directory for this run: `SMACK_CALIB_DIR` when
/// set, else `<out root>/calib`.
fn calib_dir(out_root: &std::path::Path) -> PathBuf {
    std::env::var_os("SMACK_CALIB_DIR")
        .filter(|v| !v.is_empty())
        .map_or_else(|| out_root.join("calib"), PathBuf::from)
}

/// Distribute a run through the experiment service: bind the
/// coordinator, spawn `workers` worker processes (0 = external fleet /
/// inline degradation), serve leases until every unit has exactly one
/// accepted result, merge. Replaces the old fork-per-shard orchestration
/// — `all --shards N` is now a thin client of this path, and a crashed
/// or hung worker costs one lease period instead of the whole run.
fn run_service(
    args: &Args,
    workers: usize,
    selection: &[&'static Experiment],
    out_root: &std::path::Path,
) -> Result<(), String> {
    let calib = calib_dir(out_root);
    let cfg = ServiceConfig {
        selection: selection.to_vec(),
        mode: args.mode,
        threads: args.threads,
        tau_jitter: args.tau_jitter,
        out_root: out_root.to_path_buf(),
        bind: args.addr.clone().unwrap_or_else(|| "127.0.0.1:0".to_owned()),
        workers,
        lease_ms: args.lease_ms,
        grace_ms: args.grace_ms,
        timeout_ms: args.timeout_ms,
        calib_dir: calib.clone(),
    };
    let service = Service::bind(cfg)?;
    println!("[service] coordinator on {} ({} spawned workers)", service.addr(), workers);
    let summary = service.run()?;
    report::banner("service run");
    println!(
        "{} units, {} leases ({} expired, {} duplicates, {} failures), \
         {} run inline, wall {:.1} ms; calibration cache: {}",
        summary.units,
        summary.stats.leased,
        summary.stats.expired,
        summary.stats.duplicates,
        summary.stats.failures,
        summary.inline_units,
        summary.wall_ms,
        calib.display()
    );
    for note in &summary.worker_notes {
        println!("[warn] {note}");
    }
    for path in &summary.merged {
        println!("[csv] {} (merged)", path.display());
    }
    Ok(())
}

/// The `work` subcommand: serve leases until the coordinator says done.
fn run_work(args: &Args) -> Result<(), String> {
    let connect = args.connect.clone().expect("parse() requires --connect for work");
    // Workers share the fleet's calibration cache when the coordinator
    // (or the operator) exported one.
    if let Some(dir) = std::env::var_os("SMACK_CALIB_DIR").filter(|v| !v.is_empty()) {
        Sessions::global().attach_disk_cache(PathBuf::from(dir));
    }
    let id = std::env::var("SMACK_WORKER_INDEX")
        .ok()
        .filter(|v| !v.is_empty())
        .map_or_else(|| format!("worker-pid{}", std::process::id()), |i| format!("worker-{i}"));
    let cfg = WorkerConfig { connect, threads: args.threads, id, chaos: ChaosPlan::from_env() };
    let summary = run_worker(&cfg)?;
    println!(
        "[{}] {} units completed, {} duplicates discarded, {} failures",
        cfg.id, summary.completed, summary.duplicates, summary.failures
    );
    Ok(())
}

/// Merge previously written shard directories (`--merge DIR..`).
fn run_merge(dirs: &[String], out_root: &std::path::Path) -> Result<(), String> {
    if dirs.len() < 2 {
        return Err("--merge needs at least two shard directories".to_owned());
    }
    let dirs: Vec<PathBuf> = dirs.iter().map(PathBuf::from).collect();
    let merged = report::merge_shard_dirs(&dirs, out_root)
        .map_err(|e| format!("merging shard CSVs: {e}"))?;
    for path in &merged {
        println!("[csv] {} (merged)", path.display());
    }
    Ok(())
}

/// Process entry point shared by every harness binary.
pub fn run(default: Selection) -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run_inner(&argv, default) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_inner(argv: &[String], default: Selection) -> Result<(), String> {
    let args = parse(argv)?;
    if args.list {
        print_list();
        return Ok(());
    }
    if args.cmd == Cmd::Work {
        return run_work(&args);
    }
    let out_root = args.out.clone().unwrap_or_else(report::default_repro_dir);
    if args.merge {
        return run_merge(&args.names, &out_root);
    }
    let selection = resolve(&args.names, default)?;
    if args.cmd == Cmd::Coordinate {
        return run_service(&args, args.workers.unwrap_or(0), &selection, &out_root);
    }
    match args.shards {
        // One shard of one is just the unsharded run — no worker fleet,
        // no tagged CSVs, nothing to merge.
        Some(1) | None => {}
        Some(n) => return run_service(&args, n, &selection, &out_root),
    }

    // Persistent calibration cache: attach before the first experiment so
    // every calibration this process computes is written through, and
    // everything an earlier process computed is loaded instead.
    Sessions::global().attach_disk_cache(calib_dir(&out_root));

    let runner =
        args.threads.map_or_else(Runner::from_env, Runner::with_threads).with_shard(args.shard);
    let spec =
        RunSpec { mode: args.mode, runner, out_dir: args.out.clone(), tau_jitter: args.tau_jitter };
    let times = registry::run_selection(&selection, &spec);

    if selection.len() > 1 {
        report::banner("wall time");
        let total: std::time::Duration = times.iter().map(|(_, d)| *d).sum();
        let mut table = report::Table::new(&["figure", "wall ms", "share"]);
        for (name, d) in &times {
            table.row(vec![
                report::s(name),
                report::f(d.as_secs_f64() * 1e3, 1),
                format!("{:.0}%", d.as_secs_f64() / total.as_secs_f64().max(1e-9) * 100.0),
            ]);
        }
        table.row(vec!["total".to_owned(), report::f(total.as_secs_f64() * 1e3, 1), String::new()]);
        table.print();
    }
    let cal = Sessions::global().calibrations();
    println!(
        "[calib] {} in-memory hits, {} disk hits, {} computed ({})",
        cal.hits(),
        cal.disk_hits(),
        cal.misses(),
        cal.disk_dir().map_or_else(|| "no disk cache".to_owned(), |d| d.display().to_string())
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| (*a).to_owned()).collect()
    }

    #[test]
    fn parses_flags_in_both_spellings() {
        let a = parse(&strings(&["fig5", "--full", "--threads", "4", "--shard=2/4"]))
            .expect("--full, --threads N, and --shard K/N should all parse");
        assert_eq!(a.names, vec!["fig5"]);
        assert_eq!(a.mode, Mode::Full);
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.shard, Shard::new(1, 4));

        let b = parse(&strings(&["--threads=8", "--out", "x/y", "--tau-jitter=32"]))
            .expect("--threads=N, --out DIR, and --tau-jitter=N should all parse");
        assert_eq!(b.threads, Some(8));
        assert_eq!(b.out, Some(PathBuf::from("x/y")));
        assert_eq!(b.tau_jitter, 32);
        assert_eq!(b.mode, Mode::Quick);
    }

    #[test]
    fn rejects_bad_flags() {
        assert!(parse(&strings(&["--threads", "0"])).is_err());
        assert!(parse(&strings(&["--threads", "zero"])).is_err());
        assert!(parse(&strings(&["--shard", "5/4"])).is_err());
        assert!(parse(&strings(&["--wat"])).is_err());
        assert!(parse(&strings(&["--merge", "--shards", "2"])).is_err());
        assert!(parse(&strings(&["--shards", "2", "--shard", "1/2"])).is_err());
    }

    #[test]
    fn parses_service_subcommands() {
        let c = parse(&strings(&["coordinate", "fig5", "--workers=3", "--lease-ms", "500"]))
            .expect("coordinate with workers and lease period should parse");
        assert_eq!(c.cmd, Cmd::Coordinate);
        assert_eq!(c.names, vec!["fig5"]);
        assert_eq!(c.workers, Some(3));
        assert_eq!(c.lease_ms, 500);
        assert_eq!(c.timeout_ms, DEFAULT_TIMEOUT_MS);

        let w = parse(&strings(&["work", "--connect=127.0.0.1:9", "--threads", "2"]))
            .expect("work with a connect address should parse");
        assert_eq!(w.cmd, Cmd::Work);
        assert_eq!(w.connect.as_deref(), Some("127.0.0.1:9"));
        assert_eq!(w.threads, Some(2));

        assert!(parse(&strings(&["work"])).is_err(), "work needs --connect");
        assert!(parse(&strings(&["work", "--connect=x", "fig5"])).is_err());
        assert!(parse(&strings(&["coordinate", "--shards", "2"])).is_err());
        assert!(parse(&strings(&["--workers", "2"])).is_err(), "--workers is coordinate-only");
        assert!(parse(&strings(&["fig5", "--connect=x"])).is_err());
        assert!(parse(&strings(&["coordinate", "--lease-ms", "0"])).is_err());
    }

    #[test]
    fn resolves_defaults_and_names() {
        let paper =
            resolve(&[], Selection::Paper).expect("no names + Paper default should resolve");
        assert_eq!(paper.len(), 11);
        let abl = resolve(&[], Selection::Ablations)
            .expect("no names + Ablations default should resolve");
        assert!(abl.len() >= 7);
        let named = resolve(&[], Selection::Named("fig5"))
            .expect("the registered default experiment `fig5` should resolve");
        assert_eq!(named[0].name, "fig5");
        let picked = resolve(&strings(&["table2", "fig5"]), Selection::Paper)
            .expect("explicit names `table2 fig5` should resolve");
        assert_eq!(picked.iter().map(|e| e.name).collect::<Vec<_>>(), ["table2", "fig5"]);
        assert!(resolve(&strings(&["nope"]), Selection::Paper).is_err());
    }
}
