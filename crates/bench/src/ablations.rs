//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! These do not correspond to paper artifacts; they interrogate the model:
//! *why* does SMaCk win? Each ablation switches one mechanism off (or
//! sweeps one parameter) and re-measures an attack. Every ablation is a
//! registered [`crate::registry::Experiment`], so the shared CLI can run
//! them individually or as the `ablations` bundle.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use smack::channel::{random_payload, run_channel_in, ChannelSpec};
use smack::rsa::{self, RsaAttackConfig};
use smack::session::Scenario;
use smack_crypto::Bignum;
use smack_uarch::{MicroArch, NoiseConfig, ProbeKind, UarchProfile};
use smack_victims::modexp::{ModexpAlgorithm, ModexpVictimBuilder};

use crate::registry::Ctx;
use crate::report::{banner, f, s, Table};

/// Sweep the machine-clear latency surcharge and measure the covert
/// channel's error rate: the SMC margin *is* the attack's robustness.
pub fn smc_penalty_sweep(ctx: &Ctx) {
    if !ctx.owns(0) {
        return;
    }
    banner("Ablation — SMC latency surcharge vs. channel error rate");
    let bits = ctx.mode().pick(200, 1_000);
    let payload = random_payload(bits, 0xab1);
    let mut t = Table::new(&["smc_extra (cycles)", "margin over L2 (cycles)", "error rate (%)"]);
    let surcharges = [4u32, 8, 16, 40, 120, 275];
    // Each surcharge value is its own profile fingerprint, so the pooled
    // machines and cached calibrations never cross between sweep points.
    let profile_for = |i: usize| -> UarchProfile {
        let mut profile: UarchProfile = MicroArch::CascadeLake.profile();
        let mut costs = profile.probe_costs.get(ProbeKind::Store);
        costs.smc_extra = surcharges[i];
        profile.probe_costs.set(ProbeKind::Store, costs);
        profile
    };
    let spec_for = |i: usize| Scenario::custom(profile_for(i)).with_noise(NoiseConfig::noisy());
    let results = ctx.runner().run_scenarios(spec_for, surcharges.len(), |session, _| {
        let costs = session.machine().profile().probe_costs.get(ProbeKind::Store);
        let margin = (costs.base + costs.smc_extra).saturating_sub(costs.base + costs.l2);
        let r =
            run_channel_in(session, &ChannelSpec::prime_probe(ProbeKind::Store), &payload, false)
                .expect("channel runs");
        (margin, r.error_rate_pct)
    });
    for (smc_extra, (margin, error_pct)) in surcharges.iter().zip(results) {
        t.row(vec![s(smc_extra), s(margin), f(error_pct, 1)]);
    }
    t.print();
    ctx.write_csv(&t, "ablation_smc_penalty");
    println!();
    println!(
        "as the machine-clear surcharge shrinks toward the noise floor the \
         channel degrades into Mastik-grade unreliability."
    );
}

/// Switch off the front-end's L2-latency hiding: classic execute-probing
/// suddenly has a usable margin, explaining *why* Mastik struggles on real
/// front ends.
pub fn frontend_ablation(ctx: &Ctx) {
    if !ctx.owns(0) {
        return;
    }
    banner("Ablation — front-end L2-latency hiding vs. the Mastik margin");
    let samples = ctx.mode().pick(50, 500);
    let mut t = Table::new(&["front-end", "execute L1i (cycles)", "execute L2 (cycles)", "margin"]);
    let variants = [("pipelined (real)", true), ("naive (exposed)", false)];
    let spec_for = |i: usize| -> Scenario {
        let mut profile = MicroArch::CascadeLake.profile();
        if !variants[i].1 {
            profile.hierarchy.ifetch_extra_l2 = profile.hierarchy.lat_l2;
        }
        Scenario::custom(profile)
    };
    let results = ctx.runner().run_scenarios(spec_for, variants.len(), |session, _| {
        let row = smack::characterize::figure1_mastik_row(
            session.machine(),
            smack_uarch::ThreadId::T0,
            samples,
        )
        .expect("mastik row runs");
        let mean = |st: smack_uarch::Placement| -> f64 {
            row.iter().find(|c| c.state == st).map(|c| c.stats.mean).unwrap_or(f64::NAN)
        };
        (mean(smack_uarch::Placement::L1i), mean(smack_uarch::Placement::L2))
    });
    for ((label, _), (l1i, l2)) in variants.iter().zip(results) {
        t.row(vec![(*label).to_owned(), f(l1i, 1), f(l2, 1), f(l2 - l1i, 1)]);
    }
    t.print();
    ctx.write_csv(&t, "ablation_frontend");
}

/// Sweep the timer granularity (Intel's 1 cycle to far coarser than AMD's
/// 21) and measure channel reliability — the paper's §7 discussion of AMD
/// timer resolution.
pub fn timer_resolution_sweep(ctx: &Ctx) {
    if !ctx.owns(0) {
        return;
    }
    banner("Ablation — rdtsc resolution vs. channel error rate");
    let bits = ctx.mode().pick(200, 1_000);
    let payload = random_payload(bits, 0xab2);
    let mut t = Table::new(&["tsc resolution (cycles)", "error rate (%)"]);
    let resolutions = [1u32, 7, 21, 63, 127, 255];
    let spec_for = |i: usize| -> Scenario {
        let mut profile = MicroArch::CascadeLake.profile();
        profile.tsc_resolution = resolutions[i];
        Scenario::custom(profile).with_noise(NoiseConfig::noisy())
    };
    let errors = ctx.runner().run_scenarios(spec_for, resolutions.len(), |session, _| {
        let r =
            run_channel_in(session, &ChannelSpec::prime_probe(ProbeKind::Store), &payload, false)
                .expect("channel runs");
        r.error_rate_pct
    });
    for (res, error_pct) in resolutions.iter().zip(errors) {
        t.row(vec![s(res), f(error_pct, 1)]);
    }
    t.print();
    ctx.write_csv(&t, "ablation_timer");
    println!();
    println!(
        "SMaCk's multi-hundred-cycle margins survive even very coarse timers \
         — the paper's point about AMD's 21-cycle rdtsc hurting Mastik much \
         more than SMaCk."
    );
}

/// Sweep the prime→probe wait (the paper's §5.2 τ_w discussion) against
/// single-trace RSA recovery.
pub fn tau_w_sweep(ctx: &Ctx) {
    if !ctx.owns(0) {
        return;
    }
    banner("Ablation — τ_w (prime→probe wait) vs. RSA single-trace recovery");
    let bits = ctx.mode().pick(128, 512);
    let mut rng = SmallRng::seed_from_u64(0xab3);
    let exp = Bignum::random_bits(&mut rng, bits);
    let mut t = Table::new(&["wait (cycles)", "single-trace recovery"]);
    let waits = [50u64, 100, 200, 400, 800, 1600];
    let scenario = Scenario::new(MicroArch::TigerLake).with_seed(7);
    let rates = ctx.runner().run_scenarios(scenario, waits.len(), |session, i| {
        let cfg = RsaAttackConfig {
            wait_cycles: waits[i],
            noise: NoiseConfig::quiet(),
            ..RsaAttackConfig::new(ProbeKind::Flush)
        };
        let victim = rsa::build_victim(&cfg);
        let trace = rsa::collect_trace_in(session, &victim, &exp, &cfg).expect("trace collects");
        rsa::score_bits(&rsa::decode_trace(&trace, exp.bit_len()), &exp)
    });
    for (wait, rate) in waits.iter().zip(rates) {
        t.row(vec![s(wait), f(rate, 3)]);
    }
    t.print();
    ctx.write_csv(&t, "ablation_tau_w");
    println!();
    println!(
        "too little wait starves the victim of progress between samples; too \
         much loses multiplications — the paper settled on a 700-iteration \
         loop for the same trade-off."
    );
}

/// τ_w *jitter* ablation (the ROADMAP trace-diversification lever): the
/// same multi-trace RSA recovery with a fixed exposure window vs a
/// per-trace jittered one. With a fixed window the same decode misses
/// recur in every trace (systematic error — no vote can fix them);
/// jitter decorrelates the misses so majority voting has independent
/// errors to outvote.
pub fn tau_jitter_sweep(ctx: &Ctx) {
    if !ctx.owns(0) {
        return;
    }
    banner("Ablation — τ_w jitter: fixed vs. jittered exposure window (RSA voting)");
    let bits = ctx.mode().pick(128, 512);
    let max_traces = ctx.mode().pick(8, 15);
    let mut rng = SmallRng::seed_from_u64(0xab7);
    let exp = Bignum::random_bits(&mut rng, bits);
    let jitters = [0u64, 16, 48, 96];
    let mut t = Table::new(&[
        "jitter (cycles)",
        "single-trace (aligned)",
        &format!("after {max_traces} traces"),
        "best (aligned)",
    ]);
    // The hardest quick-mode operating point: Prime+iLock, the weakest
    // probe class in Figure 5, where the fixed window leaves plenty of
    // systematic decode error to decorrelate.
    let scenario = Scenario::new(MicroArch::TigerLake).with_noise(NoiseConfig::realistic());
    let results = ctx.runner().run_scenarios(scenario, jitters.len(), |session, i| {
        let cfg =
            RsaAttackConfig { wait_jitter: jitters[i], ..RsaAttackConfig::new(ProbeKind::Lock) };
        let victim = rsa::build_victim(&cfg);
        let mut decodes: Vec<Vec<bool>> = Vec::new();
        let mut rates = Vec::new();
        for trace_idx in 0..max_traces {
            session.renew(3_000 + trace_idx as u64);
            let trace = rsa::collect_trace_in(session, &victim, &exp, &cfg).expect("trace");
            decodes.push(rsa::decode_trace(&trace, exp.bit_len()));
            let combined = rsa::majority_vote(&decodes, exp.bit_len());
            rates.push(rsa::score_bits_aligned(&combined, &exp));
        }
        let single = rates.first().copied().unwrap_or(0.0);
        let last = rates.last().copied().unwrap_or(0.0);
        let best = rates.iter().cloned().fold(0.0f64, f64::max);
        (single, last, best)
    });
    for (jitter, (single, last, best)) in jitters.iter().zip(results) {
        t.row(vec![s(jitter), f(single, 3), f(last, 3), f(best, 3)]);
    }
    t.print();
    ctx.write_csv(&t, "ablation_tau_jitter");
    println!();
    println!(
        "the with/without comparison: row 0 is the fixed window, whose \
         systematic misses recur in every trace and cap recovery; a small \
         jitter moves the sampling phase off the pathological alignment and \
         lifts the best recovery well past the fixed-window plateau (too \
         much jitter degrades individual traces again)."
    );
}

/// §6.2 countermeasure: the identical attack against the leaky
/// square-and-multiply victim vs. the constant-time Montgomery ladder.
pub fn countermeasure(ctx: &Ctx) {
    if !ctx.owns(0) {
        return;
    }
    banner("Countermeasure — constant-time exponentiation defeats the attack (§6.2)");
    let bits = ctx.mode().pick(128, 512);
    let mut rng = SmallRng::seed_from_u64(0xab4);
    let exp = Bignum::random_bits(&mut rng, bits);
    let cfg =
        RsaAttackConfig { noise: NoiseConfig::quiet(), ..RsaAttackConfig::new(ProbeKind::Flush) };
    let truth_ones =
        (0..exp.bit_len()).filter(|i| exp.bit(*i)).count() as f64 / exp.bit_len() as f64;
    let mut t = Table::new(&[
        "victim",
        "single-trace recovery",
        "decoded ones fraction",
        "true ones fraction",
    ]);
    let victims = [
        ("square-and-multiply (Libgcrypt 1.5.1)", ModexpAlgorithm::BinaryLtr),
        ("Montgomery ladder (constant-time)", ModexpAlgorithm::MontgomeryLadder),
    ];
    let scenario = Scenario::new(MicroArch::TigerLake).with_seed(11);
    let results = ctx.runner().run_scenarios(scenario, victims.len(), |session, i| {
        let mut b = ModexpVictimBuilder::new(victims[i].1);
        b.operand_bits(cfg.operand_bits);
        let victim = b.build();
        let trace = rsa::collect_trace_in(session, &victim, &exp, &cfg).expect("trace collects");
        let decoded = rsa::decode_trace(&trace, exp.bit_len());
        let rate = rsa::score_bits(&decoded, &exp);
        let ones = decoded.iter().filter(|b| **b).count() as f64 / decoded.len().max(1) as f64;
        (rate, ones)
    });
    for ((label, _), (rate, ones)) in victims.iter().zip(results) {
        t.row(vec![(*label).to_owned(), f(rate, 3), f(ones, 2), f(truth_ones, 2)]);
    }
    t.print();
    ctx.write_csv(&t, "ablation_countermeasure");
    println!();
    println!(
        "the leaky victim's decoded ones-fraction tracks the key; the ladder \
         multiplies on every bit, so the attacker decodes a structureless \
         all-ones stream — the schedule carries no key information."
    );
}

/// How much does the SMC storm slow the sibling? (§4.2's 235-cycle clear
/// and §7's up-to-10x claims.)
pub fn sibling_slowdown(ctx: &Ctx) {
    if !ctx.owns(0) {
        return;
    }
    banner("Ablation — victim slowdown under SMC machine-clear storms");
    use smack::oracle::EvictionSet;
    use smack::probe::Prober;
    use smack_uarch::asm::Assembler;
    use smack_uarch::isa::Reg;
    use smack_uarch::{PerfEvent, ThreadId};

    let mut t =
        Table::new(&["attacker behaviour", "victim instructions / 100k cycles", "slowdown"]);
    let behaviours = [("idle", false), ("Prime+iStore storm", true)];
    let scenario = Scenario::new(MicroArch::CascadeLake);
    let retired_counts = ctx.runner().run_scenarios(scenario, behaviours.len(), |session, i| {
        let attack = behaviours[i].1;
        let m: &mut smack_uarch::Machine = session.machine();
        let mut a = Assembler::new(0x60_0000);
        a.label("spin").add_imm(Reg::R2, 1).jmp("spin");
        let prog = a.assemble().expect("victim assembles");
        m.load_program(&prog);
        let ev = EvictionSet::for_machine(m, 0x10_0000, 7);
        ev.install(m);
        let mut p = Prober::new(ThreadId::T0);
        m.start_program(ThreadId::T1, prog.entry(), &[]);
        let before = m.counters(ThreadId::T1).snapshot();
        let start = m.clock(ThreadId::T0);
        while m.clock(ThreadId::T0) - start < 100_000 {
            if attack {
                ev.prime(m, &mut p).expect("prime");
                ev.probe(m, &mut p, ProbeKind::Store).expect("probe");
            } else {
                m.advance(ThreadId::T0, 500).expect("advance");
            }
        }
        m.counters(ThreadId::T1).delta(&before, PerfEvent::InstRetired) as f64
    });
    let baseline = retired_counts[0];
    for ((label, _), retired) in behaviours.iter().zip(&retired_counts) {
        let slowdown = if *retired > 0.0 { baseline / retired } else { f64::INFINITY };
        t.row(vec![(*label).to_owned(), f(*retired, 0), format!("{:.1}x", slowdown)]);
    }
    t.print();
    ctx.write_csv(&t, "ablation_slowdown");
    println!();
    println!(
        "paper: a single clear stalls the sibling ~235 cycles; sustained \
              storms slow it several-fold (§7 reports up to 10x in the case studies)."
    );
}
