//! # smack-bench
//!
//! Experiment harnesses that regenerate every table and figure in the
//! SMaCk paper's evaluation, printing the same rows/series the paper
//! reports and writing CSVs under `target/repro/`.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig1` | Figure 1 — probe timing per cache state (+ Mastik row) |
//! | `fig2` | Figure 2 — SMC counter reverse engineering (Intel + AMD) |
//! | `table1` | Table 1 — covert-channel bandwidth & error rates |
//! | `fig3` | Figure 3 — receiver timing trace with assigned bits |
//! | `fig4` | Figure 4 — multiplication-set activity |
//! | `fig5` | Figure 5 — traces needed for 70% RSA key recovery |
//! | `table2` | Table 2 — SRP leakage: Prime+iStore vs Mastik |
//! | `fig6` | Figure 6 — SRP single-trace pattern timeline |
//! | `table3` | Table 3 — ISpectre applicability matrix |
//! | `table4` | Table 4 — ISpectre leakage rates (B/s) |
//! | `table5` | §6.1 — detection accuracy / F-score / FPR |
//! | `all` | everything above in sequence |
//!
//! Every harness accepts `--full` for paper-scale sample counts; the
//! default is a quick mode sized for CI.

pub mod ablations;
pub mod experiments;
pub mod report;
pub mod runner;

/// Run mode for the harnesses.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Mode {
    /// CI-sized sample counts (default).
    Quick,
    /// Paper-scale sample counts.
    Full,
}

impl Mode {
    /// Parse from process args: `--full` selects [`Mode::Full`].
    pub fn from_args() -> Mode {
        if std::env::args().any(|a| a == "--full") {
            Mode::Full
        } else {
            Mode::Quick
        }
    }

    /// Pick a size by mode.
    pub fn pick(self, quick: usize, full: usize) -> usize {
        match self {
            Mode::Quick => quick,
            Mode::Full => full,
        }
    }
}
