//! # smack-bench
//!
//! Experiment harnesses that regenerate every table and figure in the
//! SMaCk paper's evaluation, printing the same rows/series the paper
//! reports and writing CSVs under `target/repro/`.
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig1` | Figure 1 — probe timing per cache state (+ Mastik row) |
//! | `fig2` | Figure 2 — SMC counter reverse engineering (Intel + AMD) |
//! | `table1` | Table 1 — covert-channel bandwidth & error rates |
//! | `fig3` | Figure 3 — receiver timing trace with assigned bits |
//! | `fig4` | Figure 4 — multiplication-set activity |
//! | `fig5` | Figure 5 — traces needed for 70% RSA key recovery |
//! | `table2` | Table 2 — SRP leakage: Prime+iStore vs Mastik |
//! | `fig6` | Figure 6 — SRP single-trace pattern timeline |
//! | `table3` | Table 3 — ISpectre applicability matrix |
//! | `table4` | Table 4 — ISpectre leakage rates (B/s) |
//! | `table5` | §6.1 — detection accuracy / F-score / FPR |
//! | `all` | everything above in sequence |
//!
//! Every harness accepts `--full` for paper-scale sample counts (the
//! default is a quick mode sized for CI) and `--threads N` to set the
//! trial-runner worker count without environment plumbing (mirroring —
//! and taking precedence over — `SMACK_BENCH_THREADS`).

pub mod ablations;
pub mod experiments;
pub mod report;
pub mod runner;

/// Run mode for the harnesses.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Mode {
    /// CI-sized sample counts (default).
    Quick,
    /// Paper-scale sample counts.
    Full,
}

impl Mode {
    /// Parse the harness CLI from the process args: `--full` selects
    /// [`Mode::Full`], and `--threads N` (or `--threads=N`) sets the
    /// trial-runner worker count for the whole process (the CLI mirror of
    /// `SMACK_BENCH_THREADS`; the flag wins when both are given).
    pub fn from_args() -> Mode {
        let args: Vec<String> = std::env::args().collect();
        if let Some(threads) = parse_threads(&args) {
            runner::set_thread_override(threads);
        }
        if args.iter().any(|a| a == "--full") {
            Mode::Full
        } else {
            Mode::Quick
        }
    }

    /// Pick a size by mode.
    pub fn pick(self, quick: usize, full: usize) -> usize {
        match self {
            Mode::Quick => quick,
            Mode::Full => full,
        }
    }
}

/// Extract the worker count from `--threads N` / `--threads=N`, if given
/// and valid (zero and unparsable values are ignored).
fn parse_threads(args: &[String]) -> Option<usize> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let value = if a == "--threads" {
            it.next().cloned()
        } else {
            a.strip_prefix("--threads=").map(str::to_owned)
        };
        if let Some(n) = value.and_then(|v| v.parse::<usize>().ok()).filter(|n| *n > 0) {
            return Some(n);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|a| (*a).to_owned()).collect()
    }

    #[test]
    fn threads_flag_parses_both_spellings() {
        assert_eq!(parse_threads(&strings(&["bin", "--threads", "4"])), Some(4));
        assert_eq!(parse_threads(&strings(&["bin", "--threads=8", "--full"])), Some(8));
        assert_eq!(parse_threads(&strings(&["bin", "--full"])), None);
        assert_eq!(parse_threads(&strings(&["bin", "--threads", "zero"])), None);
        assert_eq!(parse_threads(&strings(&["bin", "--threads", "0"])), None);
    }
}
