//! # smack-bench
//!
//! Experiment harnesses that regenerate every table and figure in the
//! SMaCk paper's evaluation, printing the same rows/series the paper
//! reports and writing CSVs under `target/repro/`.
//!
//! Every experiment is a descriptor in the declarative
//! [`registry`](crate::registry): name, title, CSV schema, shardable
//! *unit* count, and a run function over a [`registry::Ctx`]. One shared
//! CLI ([`cli`]) looks experiments up by name; the fourteen binaries are
//! thin shims differing only in their default selection:
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `fig1` | Figure 1 — probe timing per cache state (+ Mastik row) |
//! | `fig2` | Figure 2 — SMC counter reverse engineering (Intel + AMD) |
//! | `table1` | Table 1 — covert-channel bandwidth & error rates |
//! | `fig3` | Figure 3 — receiver timing trace with assigned bits |
//! | `fig4` | Figure 4 — multiplication-set activity |
//! | `fig5` | Figure 5 — traces needed for 70% RSA key recovery |
//! | `table2` | Table 2 — SRP leakage: Prime+iStore vs Mastik |
//! | `fig6` | Figure 6 — SRP single-trace pattern timeline |
//! | `table3` | Table 3 — ISpectre applicability matrix |
//! | `table4` | Table 4 — ISpectre leakage rates (B/s) |
//! | `table5` | §6.1 — detection accuracy / F-score / FPR |
//! | `fingerprint` | Case Study II — library fingerprinting |
//! | `ablations` | every ablation study |
//! | `all` | the eleven paper artifacts in sequence |
//!
//! Every binary accepts `--full` (paper-scale sample counts), `--threads
//! N` (trial-runner workers), `--shard K/N` (run this slice of the unit
//! space, emitting mergeable unit-tagged CSVs), `--shards N` (distribute
//! over a worker fleet via the fault-tolerant experiment [`service`],
//! bit-identical to the unsharded run), `--out DIR`, `--tau-jitter N`
//! and `--list`, plus the `coordinate`/`work` service subcommands — see
//! [`cli`].

pub mod ablations;
pub mod cli;
pub mod experiments;
pub mod registry;
pub mod report;
pub mod runner;
pub mod service;

/// Run mode for the harnesses.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Mode {
    /// CI-sized sample counts (default).
    Quick,
    /// Paper-scale sample counts.
    Full,
}

impl Mode {
    /// Pick a size by mode.
    pub fn pick(self, quick: usize, full: usize) -> usize {
        match self {
            Mode::Quick => quick,
            Mode::Full => full,
        }
    }
}
