//! The declarative experiment registry.
//!
//! Every paper artifact (figures 1–6, tables 1–5), the fingerprinting
//! case study and each ablation is one [`Experiment`] descriptor: a name,
//! a title, the CSV files it owns, its *unit* count, and a run function.
//! A unit is the experiment's shardable atom — a probe class for fig5, an
//! SRP group for table2, a (processor, probe) cell for table4, the whole
//! experiment for the single-scene figures — and every CSV row is a pure
//! function of its unit index, which is what makes process-level sharding
//! reassemble bit-identical output (`report::merge_csvs`).
//!
//! Orchestrators enumerate [`registry`] instead of hard-coding harness
//! functions; adding a workload is adding one descriptor, not a new
//! binary. The single shared CLI (`crate::cli`) looks experiments up here
//! by name.

use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::report::Table;
use crate::runner::Runner;
use crate::{ablations, experiments, Mode};

/// Which bundle an experiment belongs to.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum Group {
    /// A paper evaluation artifact — what `all` runs by default.
    Paper,
    /// An ablation study (`ablations` binary).
    Ablation,
    /// A case-study extra (`fingerprint` binary).
    CaseStudy,
}

/// One registered experiment. See the [module documentation](self).
pub struct Experiment {
    /// CLI name (also the binary shim's name where one exists).
    pub name: &'static str,
    /// Human-readable one-liner for `--list`.
    pub title: &'static str,
    /// Bundle membership.
    pub group: Group,
    /// CSV files this experiment writes (without `.csv`).
    pub csvs: &'static [&'static str],
    /// Shardable unit count for a mode.
    pub units: fn(Mode) -> usize,
    /// Run the units selected by the context.
    pub run: fn(&Ctx),
}

/// Execution context handed to every experiment: the run mode, the
/// (shard-aware) trial runner, CSV routing, and the flag-gated τ_w jitter
/// amplitude. Experiments ask [`Ctx::units`] which of their units this
/// process owns and route every CSV through [`Ctx::write_csv`] so sharded
/// runs emit mergeable unit-tagged partials.
pub struct Ctx {
    mode: Mode,
    runner: Runner,
    /// Global unit number of this experiment's unit 0 (offsets the shard
    /// filter so consecutive single-unit experiments round-robin across
    /// shards).
    unit_base: usize,
    out_dir: Option<PathBuf>,
    tau_jitter: u64,
    /// Explicit local unit ownership, overriding the shard filter — how
    /// the experiment service executes exactly one leased unit.
    unit_filter: Option<Vec<usize>>,
    /// Emit unit-tagged CSVs even on a solo shard (service workers write
    /// mergeable partials from a solo-sharded runner).
    force_tagged: bool,
}

impl Ctx {
    /// A context that owns every unit and writes to the default output
    /// directory — what the unsharded harness and the tests use.
    pub fn solo(mode: Mode, runner: Runner) -> Ctx {
        Ctx {
            mode,
            runner,
            unit_base: 0,
            out_dir: None,
            tau_jitter: 0,
            unit_filter: None,
            force_tagged: false,
        }
    }

    /// Replace the CSV output directory (`None` = `target/repro/`).
    pub fn with_out_dir(mut self, dir: Option<PathBuf>) -> Ctx {
        self.out_dir = dir;
        self
    }

    /// Set this experiment's global unit offset.
    pub fn with_unit_base(mut self, base: usize) -> Ctx {
        self.unit_base = base;
        self
    }

    /// Set the τ_w jitter amplitude (see `smack::probe::jittered_wait`).
    pub fn with_tau_jitter(mut self, jitter: u64) -> Ctx {
        self.tau_jitter = jitter;
        self
    }

    /// Restrict this context to an explicit set of local unit indices,
    /// overriding the runner's shard filter — the experiment service uses
    /// a single-unit filter per lease. Out-of-range indices are ignored.
    pub fn with_unit_filter(mut self, units: Vec<usize>) -> Ctx {
        self.unit_filter = Some(units);
        self
    }

    /// Emit unit-tagged (mergeable partial) CSVs regardless of shard
    /// configuration — service workers run a solo-sharded runner but must
    /// produce partials the coordinator can merge.
    pub fn with_forced_tagging(mut self) -> Ctx {
        self.force_tagged = true;
        self
    }

    /// The run mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The trial runner every experiment must fan out through (threads
    /// and shard apply uniformly — experiments never consult the
    /// environment themselves).
    pub fn runner(&self) -> &Runner {
        &self.runner
    }

    /// The τ_w jitter amplitude for fig5/table2-style trace collection
    /// (0 = the historical fixed exposure window).
    pub fn tau_jitter(&self) -> u64 {
        self.tau_jitter
    }

    /// The unit indices in `0..total` this process owns, ascending.
    pub fn units(&self, total: usize) -> Vec<usize> {
        match &self.unit_filter {
            Some(filter) => {
                let mut units: Vec<usize> = filter.iter().copied().filter(|u| *u < total).collect();
                units.sort_unstable();
                units.dedup();
                units
            }
            None => self.runner.owned_units(self.unit_base, total),
        }
    }

    /// Whether this process owns unit `unit`.
    pub fn owns(&self, unit: usize) -> bool {
        match &self.unit_filter {
            Some(filter) => filter.contains(&unit),
            None => self.runner.shard().owns(self.unit_base + unit),
        }
    }

    /// Write a table as this experiment's CSV `name`, unit-tagged when
    /// the run is sharded (reporting, but not aborting on, I/O errors).
    pub fn write_csv(&self, table: &Table, name: &str) {
        let tagged = self.force_tagged || !self.runner.shard().is_solo();
        match table.try_write_csv_in(self.out_dir.as_deref(), name, tagged) {
            Ok(path) => println!("[csv] {}", path.display()),
            Err(e) => eprintln!("warning: could not write {name}.csv: {e}"),
        }
    }
}

fn one_unit(_: Mode) -> usize {
    1
}

fn fig5_units(_: Mode) -> usize {
    experiments::FIG5_KINDS.len()
}

fn table2_units(_: Mode) -> usize {
    smack_crypto::SrpGroup::PAPER_SIZES.len()
}

fn table4_units(_: Mode) -> usize {
    experiments::TABLE4_CELLS
}

fn analyze_units(_: Mode) -> usize {
    experiments::ANALYZE_UNITS
}

/// Every experiment, in the order `all` runs the paper artifacts.
pub fn registry() -> &'static [Experiment] {
    static REGISTRY: &[Experiment] = &[
        Experiment {
            name: "fig1",
            title: "Figure 1 — probe timing per cache state (+ Mastik row)",
            group: Group::Paper,
            csvs: &["fig1"],
            units: one_unit,
            run: |ctx| {
                experiments::fig1(ctx);
            },
        },
        Experiment {
            name: "fig2",
            title: "Figure 2 — SMC counter reverse engineering (Intel + AMD)",
            group: Group::Paper,
            csvs: &["fig2_intel", "fig2_amd"],
            units: one_unit,
            run: |ctx| {
                experiments::fig2(ctx);
            },
        },
        Experiment {
            name: "table1",
            title: "Table 1 — covert-channel bandwidth & error rates",
            group: Group::Paper,
            csvs: &["table1"],
            units: one_unit,
            run: |ctx| {
                experiments::table1(ctx);
            },
        },
        Experiment {
            name: "fig3",
            title: "Figure 3 — receiver timing trace with assigned bits",
            group: Group::Paper,
            csvs: &["fig3"],
            units: one_unit,
            run: |ctx| {
                experiments::fig3(ctx);
            },
        },
        Experiment {
            name: "fig4",
            title: "Figure 4 — multiplication-set activity",
            group: Group::Paper,
            csvs: &["fig4"],
            units: one_unit,
            run: |ctx| {
                experiments::fig4(ctx);
            },
        },
        Experiment {
            name: "fig5",
            title: "Figure 5 — traces needed for 70% RSA key recovery",
            group: Group::Paper,
            csvs: &["fig5"],
            units: fig5_units,
            run: |ctx| {
                experiments::fig5(ctx);
            },
        },
        Experiment {
            name: "table2",
            title: "Table 2 — SRP leakage: Prime+iStore vs Mastik",
            group: Group::Paper,
            csvs: &["table2"],
            units: table2_units,
            run: |ctx| {
                experiments::table2(ctx);
            },
        },
        Experiment {
            name: "fig6",
            title: "Figure 6 — SRP single-trace pattern timeline",
            group: Group::Paper,
            csvs: &["fig6"],
            units: one_unit,
            run: |ctx| {
                experiments::fig6(ctx);
            },
        },
        Experiment {
            name: "table3",
            title: "Table 3 — ISpectre applicability matrix",
            group: Group::Paper,
            csvs: &["table3"],
            units: one_unit,
            run: |ctx| {
                experiments::table3(ctx);
            },
        },
        Experiment {
            name: "table4",
            title: "Table 4 — ISpectre leakage rates (B/s)",
            group: Group::Paper,
            csvs: &["table4"],
            units: table4_units,
            run: |ctx| {
                experiments::table4(ctx);
            },
        },
        Experiment {
            name: "table5",
            title: "§6.1 — detection accuracy / F-score / FPR",
            group: Group::Paper,
            csvs: &["table5"],
            units: one_unit,
            run: |ctx| {
                experiments::table5(ctx);
            },
        },
        Experiment {
            name: "fingerprint",
            title: "Case Study II steps 1–2 — library fingerprinting",
            group: Group::CaseStudy,
            csvs: &["fingerprint"],
            units: one_unit,
            run: experiments::fingerprint,
        },
        Experiment {
            name: "analyze",
            title: "Static leakage analyzer — taint verdicts vs measured recovery",
            group: Group::CaseStudy,
            csvs: &["analyze"],
            units: analyze_units,
            run: |ctx| {
                experiments::analyze(ctx);
            },
        },
        Experiment {
            name: "ablation_smc_penalty",
            title: "Ablation — SMC latency surcharge vs channel error rate",
            group: Group::Ablation,
            csvs: &["ablation_smc_penalty"],
            units: one_unit,
            run: ablations::smc_penalty_sweep,
        },
        Experiment {
            name: "ablation_frontend",
            title: "Ablation — front-end L2-latency hiding vs the Mastik margin",
            group: Group::Ablation,
            csvs: &["ablation_frontend"],
            units: one_unit,
            run: ablations::frontend_ablation,
        },
        Experiment {
            name: "ablation_timer",
            title: "Ablation — rdtsc resolution vs channel error rate",
            group: Group::Ablation,
            csvs: &["ablation_timer"],
            units: one_unit,
            run: ablations::timer_resolution_sweep,
        },
        Experiment {
            name: "ablation_tau_w",
            title: "Ablation — τ_w (prime→probe wait) vs RSA recovery",
            group: Group::Ablation,
            csvs: &["ablation_tau_w"],
            units: one_unit,
            run: ablations::tau_w_sweep,
        },
        Experiment {
            name: "ablation_tau_jitter",
            title: "Ablation — fixed vs jittered exposure window (RSA voting)",
            group: Group::Ablation,
            csvs: &["ablation_tau_jitter"],
            units: one_unit,
            run: ablations::tau_jitter_sweep,
        },
        Experiment {
            name: "ablation_countermeasure",
            title: "§6.2 — constant-time exponentiation defeats the attack",
            group: Group::Ablation,
            csvs: &["ablation_countermeasure"],
            units: one_unit,
            run: ablations::countermeasure,
        },
        Experiment {
            name: "ablation_slowdown",
            title: "Ablation — victim slowdown under SMC machine-clear storms",
            group: Group::Ablation,
            csvs: &["ablation_slowdown"],
            units: one_unit,
            run: ablations::sibling_slowdown,
        },
    ];
    REGISTRY
}

/// Look an experiment up by CLI name.
pub fn find(name: &str) -> Option<&'static Experiment> {
    registry().iter().find(|e| e.name == name)
}

/// The experiments of one group, in registry order.
pub fn group(group: Group) -> Vec<&'static Experiment> {
    registry().iter().filter(|e| e.group == group).collect()
}

/// Shared settings for running a selection of experiments.
#[derive(Clone, Debug)]
pub struct RunSpec {
    /// Quick or paper-scale sample counts.
    pub mode: Mode,
    /// The (thread- and shard-configured) trial runner.
    pub runner: Runner,
    /// CSV output directory (`None` = `target/repro/`).
    pub out_dir: Option<PathBuf>,
    /// Flag-gated τ_w jitter amplitude.
    pub tau_jitter: u64,
}

impl RunSpec {
    /// Defaults: quick mode, environment-configured runner, standard
    /// output directory, no jitter.
    pub fn new(mode: Mode, runner: Runner) -> RunSpec {
        RunSpec { mode, runner, out_dir: None, tau_jitter: 0 }
    }

    /// The context for an experiment whose first unit has global number
    /// `unit_base`.
    pub fn ctx(&self, unit_base: usize) -> Ctx {
        Ctx::solo(self.mode, self.runner)
            .with_out_dir(self.out_dir.clone())
            .with_unit_base(unit_base)
            .with_tau_jitter(self.tau_jitter)
    }
}

/// Run a selection of experiments under one spec, slicing the global unit
/// space by the runner's shard. Returns per-experiment wall times (zero
/// units owned → the experiment is skipped and reports zero).
pub fn run_selection(selection: &[&Experiment], spec: &RunSpec) -> Vec<(&'static str, Duration)> {
    let mut unit_base = 0usize;
    let mut times = Vec::with_capacity(selection.len());
    for exp in selection {
        let total = (exp.units)(spec.mode);
        let owned = spec.runner.owned_units(unit_base, total);
        let start = Instant::now();
        if !owned.is_empty() {
            (exp.run)(&spec.ctx(unit_base));
        }
        times.push((exp.name, start.elapsed()));
        unit_base += total;
    }
    times
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_and_csvs_are_unique() {
        let names: HashSet<&str> = registry().iter().map(|e| e.name).collect();
        assert_eq!(names.len(), registry().len());
        let csvs: Vec<&str> = registry().iter().flat_map(|e| e.csvs.iter().copied()).collect();
        let set: HashSet<&str> = csvs.iter().copied().collect();
        assert_eq!(set.len(), csvs.len(), "every CSV owned by one experiment");
    }

    #[test]
    fn paper_group_matches_the_historical_all_sequence() {
        let names: Vec<&str> = group(Group::Paper).iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            [
                "fig1", "fig2", "table1", "fig3", "fig4", "fig5", "table2", "fig6", "table3",
                "table4", "table5"
            ]
        );
    }

    #[test]
    fn every_experiment_is_enumerable_by_name() {
        for exp in registry() {
            assert!(std::ptr::eq(find(exp.name).expect("findable"), exp));
        }
        assert!(find("nope").is_none());
    }

    #[test]
    fn unit_counts_are_positive_and_mode_stable() {
        for exp in registry() {
            assert!((exp.units)(Mode::Quick) > 0, "{}", exp.name);
            assert_eq!((exp.units)(Mode::Quick), (exp.units)(Mode::Full), "{}", exp.name);
        }
    }
}
