//! Parallel trial execution for the experiment harnesses.
//!
//! Every experiment in this crate decomposes into *independent trials*
//! (one simulated machine per trial, seeded explicitly), so they
//! parallelize trivially: the runner fans trials out across worker
//! threads and returns results **in trial order**, which — because each
//! trial derives its RNG seed from its own index, never from shared
//! state — makes parallel output bit-identical to sequential output.
//!
//! [`Runner::run_scenarios`] is the session-layer entry point every
//! `fig*`/`table*` harness uses: each trial closure receives a
//! [`Session`] checked out from the process-wide [`Sessions`] registry —
//! a pooled machine in the scenario's exact cold start state plus the
//! shared calibration cache — instead of constructing `Machine`s and
//! calibrating inline. Machine reuse and cached calibrations are
//! unobservable to the trials (a reset machine is bit-identical to a
//! fresh one, and calibrations are pure functions of their cache key), so
//! the parallel-equals-sequential guarantee carries over unchanged.
//!
//! The worker count comes from the `--threads N` CLI flag (threaded in by
//! the registry CLI via [`Runner::with_threads`]) or the
//! `SMACK_BENCH_THREADS` environment variable (set either to `1` to
//! benchmark the sequential baseline), and defaults to the machine's
//! available parallelism.
//!
//! Beyond threads, a runner carries a [`Shard`]: the `--shard K/N` slice
//! of the experiment *unit* space this process owns. Because every trial
//! seeds its RNG from its own index, the unit space is shard-stable —
//! shard `K/N` computes exactly the rows the unsharded run computes for
//! those units, and the per-shard CSVs reassemble bit-identically (see
//! `report::merge_csvs`).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use smack::session::{Scenario, Session, Sessions};

/// A slice of the experiment unit space: the process owns units
/// `u ≡ index (mod count)` of the global unit numbering.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub struct Shard {
    index: usize,
    count: usize,
}

impl Shard {
    /// The whole space (one shard of one).
    pub fn solo() -> Shard {
        Shard { index: 0, count: 1 }
    }

    /// Shard `index` of `count` (zero-based).
    ///
    /// # Panics
    ///
    /// Panics unless `index < count`.
    pub fn new(index: usize, count: usize) -> Shard {
        assert!(index < count, "shard index {index} out of range for {count} shards");
        Shard { index, count }
    }

    /// Parse the CLI spelling `K/N` (one-based `K`).
    pub fn parse(s: &str) -> Option<Shard> {
        let (k, n) = s.split_once('/')?;
        let k = k.parse::<usize>().ok()?;
        let n = n.parse::<usize>().ok()?;
        if k == 0 || n == 0 || k > n {
            return None;
        }
        Some(Shard::new(k - 1, n))
    }

    /// Zero-based shard index.
    pub fn index(&self) -> usize {
        self.index
    }

    /// Total shard count.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Whether this is the whole space.
    pub fn is_solo(&self) -> bool {
        self.count == 1
    }

    /// Whether this shard owns global unit `unit`.
    pub fn owns(&self, unit: usize) -> bool {
        unit % self.count == self.index
    }
}

impl std::fmt::Display for Shard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.index + 1, self.count)
    }
}

/// Maps each trial index to the [`Scenario`] its session is checked out
/// for. Implemented by [`Scenario`] itself (every trial identical — the
/// common case) and by `Fn(usize) -> Scenario` closures (per-trial
/// microarchitectures or seeds).
pub trait ScenarioSpec: Sync {
    /// The scenario for trial `trial`.
    fn scenario(&self, trial: usize) -> Scenario;
}

impl ScenarioSpec for Scenario {
    fn scenario(&self, _trial: usize) -> Scenario {
        self.clone()
    }
}

impl<F> ScenarioSpec for F
where
    F: Fn(usize) -> Scenario + Sync,
{
    fn scenario(&self, trial: usize) -> Scenario {
        self(trial)
    }
}

/// A pool configuration for running independent trials.
#[derive(Copy, Clone, Debug)]
pub struct Runner {
    threads: usize,
    shard: Shard,
}

impl Runner {
    /// A runner with an explicit worker count (at least one).
    pub fn with_threads(threads: usize) -> Runner {
        Runner { threads: threads.max(1), shard: Shard::solo() }
    }

    /// A sequential runner (one worker, running inline).
    pub fn sequential() -> Runner {
        Runner::with_threads(1)
    }

    /// The standard runner: `SMACK_BENCH_THREADS` if set and valid,
    /// otherwise the machine's available parallelism. (The `--threads N`
    /// CLI flag builds its runner explicitly and wins over the
    /// environment.)
    pub fn from_env() -> Runner {
        let threads = std::env::var("SMACK_BENCH_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|n| *n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        Runner::with_threads(threads)
    }

    /// This runner restricted to one shard of the unit space.
    pub fn with_shard(mut self, shard: Shard) -> Runner {
        self.shard = shard;
        self
    }

    /// The unit-space shard this runner executes.
    pub fn shard(&self) -> Shard {
        self.shard
    }

    /// The unit indices in `0..total` this runner owns, given the global
    /// numbering offset `base` of the experiment's first unit (offsetting
    /// by experiment keeps single-unit experiments distributed round-robin
    /// across shards instead of all landing on shard one).
    pub fn owned_units(&self, base: usize, total: usize) -> Vec<usize> {
        (0..total).filter(|u| self.shard.owns(base + u)).collect()
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(0..n)` and collect the results in index order.
    ///
    /// `f` must derive any randomness from the trial index (or from data
    /// captured before the call), so the result for index `i` is the same
    /// no matter which worker runs it or in what order.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any trial.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n);
        if workers == 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let out = f(i);
                        slots.lock().expect("runner lock poisoned")[i] = Some(out);
                    })
                })
                .collect();
            for h in handles {
                if let Err(panic) = h.join() {
                    std::panic::resume_unwind(panic);
                }
            }
        });
        slots
            .into_inner()
            .expect("runner lock poisoned")
            .into_iter()
            .map(|s| s.expect("every trial index was visited"))
            .collect()
    }

    /// Run `n` session-backed trials and collect the results in index
    /// order — the single entry point for every `fig*`/`table*` harness.
    ///
    /// Each trial receives a [`Session`] checked out from
    /// [`Sessions::global`] for `spec.scenario(i)`: a pooled machine in
    /// the exact `Machine::with_noise(profile, noise, seed)` cold start
    /// state, plus the process-wide calibration cache. As with
    /// [`Runner::run`], `f` must derive any randomness from the trial
    /// index or the scenario, so parallel output is bit-identical to
    /// sequential output.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any trial.
    pub fn run_scenarios<S, T, F>(&self, spec: S, n: usize, f: F) -> Vec<T>
    where
        S: ScenarioSpec,
        T: Send,
        F: Fn(&mut Session<'_>, usize) -> T + Sync,
    {
        self.run(n, |i| {
            let mut session = Sessions::global().session(&spec.scenario(i));
            f(&mut session, i)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_trial_order() {
        let r = Runner::with_threads(4);
        let out = r.run(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9).rotate_left(13);
        let seq = Runner::sequential().run(257, f);
        let par = Runner::with_threads(8).run(257, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = Runner::with_threads(3).run(50, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 50);
        assert_eq!(out.iter().copied().collect::<HashSet<_>>().len(), 50);
    }

    #[test]
    fn zero_trials_is_empty() {
        assert!(Runner::from_env().run(0, |i| i).is_empty());
    }

    #[test]
    fn thread_count_floors_at_one() {
        assert_eq!(Runner::with_threads(0).threads(), 1);
    }

    #[test]
    fn shard_parsing_is_one_based_and_strict() {
        assert_eq!(Shard::parse("1/1"), Some(Shard::solo()));
        assert_eq!(Shard::parse("2/4"), Some(Shard::new(1, 4)));
        assert_eq!(Shard::parse("4/4"), Some(Shard::new(3, 4)));
        for bad in ["0/4", "5/4", "0/0", "x/4", "2", "2/", "/4"] {
            assert_eq!(Shard::parse(bad), None, "{bad}");
        }
        assert_eq!(Shard::new(1, 4).to_string(), "2/4");
    }

    #[test]
    fn shards_partition_the_unit_space() {
        let n = 3;
        for unit in 0..50 {
            let owners: Vec<usize> = (0..n).filter(|k| Shard::new(*k, n).owns(unit)).collect();
            assert_eq!(owners.len(), 1, "unit {unit} owned exactly once");
        }
        // The union of owned_units over all shards is 0..total, disjoint.
        let total = 7;
        let base = 11;
        let mut seen = Vec::new();
        for k in 0..n {
            let owned = Runner::sequential().with_shard(Shard::new(k, n)).owned_units(base, total);
            assert!(owned.windows(2).all(|w| w[0] < w[1]), "ascending");
            seen.extend(owned);
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..total).collect::<Vec<_>>());
        // Solo owns everything.
        assert_eq!(Runner::sequential().owned_units(5, 4), vec![0, 1, 2, 3]);
    }

    #[test]
    #[should_panic(expected = "trial 7 exploded")]
    fn trial_panics_propagate() {
        Runner::with_threads(4).run(16, |i| {
            if i == 7 {
                panic!("trial 7 exploded");
            }
            i
        });
    }
}
