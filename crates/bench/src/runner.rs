//! Parallel trial execution for the experiment harnesses.
//!
//! Every experiment in this crate decomposes into *independent trials*
//! (one simulated machine per trial, seeded explicitly), so they
//! parallelize trivially: the runner fans trials out across worker
//! threads and returns results **in trial order**, which — because each
//! trial derives its RNG seed from its own index, never from shared
//! state — makes parallel output bit-identical to sequential output.
//!
//! [`Runner::run_scenarios`] is the session-layer entry point every
//! `fig*`/`table*` harness uses: each trial closure receives a
//! [`Session`] checked out from the process-wide [`Sessions`] registry —
//! a pooled machine in the scenario's exact cold start state plus the
//! shared calibration cache — instead of constructing `Machine`s and
//! calibrating inline. Machine reuse and cached calibrations are
//! unobservable to the trials (a reset machine is bit-identical to a
//! fresh one, and calibrations are pure functions of their cache key), so
//! the parallel-equals-sequential guarantee carries over unchanged.
//!
//! The worker count comes from the `--threads N` CLI flag (stored via
//! [`set_thread_override`]) or the `SMACK_BENCH_THREADS` environment
//! variable (set either to `1` to benchmark the sequential baseline), and
//! defaults to the machine's available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use smack::session::{Scenario, Session, Sessions};

/// Process-wide worker-count override from the `--threads` CLI flag
/// (0 = unset). Takes precedence over `SMACK_BENCH_THREADS`.
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Record the `--threads N` CLI flag for [`Runner::from_env`] (the flag
/// mirrors `SMACK_BENCH_THREADS` and wins over it when both are set).
pub fn set_thread_override(threads: usize) {
    THREAD_OVERRIDE.store(threads, Ordering::Relaxed);
}

/// Maps each trial index to the [`Scenario`] its session is checked out
/// for. Implemented by [`Scenario`] itself (every trial identical — the
/// common case) and by `Fn(usize) -> Scenario` closures (per-trial
/// microarchitectures or seeds).
pub trait ScenarioSpec: Sync {
    /// The scenario for trial `trial`.
    fn scenario(&self, trial: usize) -> Scenario;
}

impl ScenarioSpec for Scenario {
    fn scenario(&self, _trial: usize) -> Scenario {
        self.clone()
    }
}

impl<F> ScenarioSpec for F
where
    F: Fn(usize) -> Scenario + Sync,
{
    fn scenario(&self, trial: usize) -> Scenario {
        self(trial)
    }
}

/// A pool configuration for running independent trials.
#[derive(Copy, Clone, Debug)]
pub struct Runner {
    threads: usize,
}

impl Runner {
    /// A runner with an explicit worker count (at least one).
    pub fn with_threads(threads: usize) -> Runner {
        Runner { threads: threads.max(1) }
    }

    /// A sequential runner (one worker, running inline).
    pub fn sequential() -> Runner {
        Runner::with_threads(1)
    }

    /// The standard runner: the `--threads` CLI override if set, then
    /// `SMACK_BENCH_THREADS` if set and valid, otherwise the machine's
    /// available parallelism.
    pub fn from_env() -> Runner {
        let override_threads = THREAD_OVERRIDE.load(Ordering::Relaxed);
        if override_threads > 0 {
            return Runner::with_threads(override_threads);
        }
        let threads = std::env::var("SMACK_BENCH_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|n| *n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        Runner::with_threads(threads)
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(0..n)` and collect the results in index order.
    ///
    /// `f` must derive any randomness from the trial index (or from data
    /// captured before the call), so the result for index `i` is the same
    /// no matter which worker runs it or in what order.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any trial.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n);
        if workers == 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let out = f(i);
                        slots.lock().expect("runner lock poisoned")[i] = Some(out);
                    })
                })
                .collect();
            for h in handles {
                if let Err(panic) = h.join() {
                    std::panic::resume_unwind(panic);
                }
            }
        });
        slots
            .into_inner()
            .expect("runner lock poisoned")
            .into_iter()
            .map(|s| s.expect("every trial index was visited"))
            .collect()
    }

    /// Run `n` session-backed trials and collect the results in index
    /// order — the single entry point for every `fig*`/`table*` harness.
    ///
    /// Each trial receives a [`Session`] checked out from
    /// [`Sessions::global`] for `spec.scenario(i)`: a pooled machine in
    /// the exact `Machine::with_noise(profile, noise, seed)` cold start
    /// state, plus the process-wide calibration cache. As with
    /// [`Runner::run`], `f` must derive any randomness from the trial
    /// index or the scenario, so parallel output is bit-identical to
    /// sequential output.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any trial.
    pub fn run_scenarios<S, T, F>(&self, spec: S, n: usize, f: F) -> Vec<T>
    where
        S: ScenarioSpec,
        T: Send,
        F: Fn(&mut Session<'_>, usize) -> T + Sync,
    {
        self.run(n, |i| {
            let mut session = Sessions::global().session(&spec.scenario(i));
            f(&mut session, i)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_trial_order() {
        let r = Runner::with_threads(4);
        let out = r.run(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9).rotate_left(13);
        let seq = Runner::sequential().run(257, f);
        let par = Runner::with_threads(8).run(257, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = Runner::with_threads(3).run(50, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 50);
        assert_eq!(out.iter().copied().collect::<HashSet<_>>().len(), 50);
    }

    #[test]
    fn zero_trials_is_empty() {
        assert!(Runner::from_env().run(0, |i| i).is_empty());
    }

    #[test]
    fn thread_count_floors_at_one() {
        assert_eq!(Runner::with_threads(0).threads(), 1);
    }

    #[test]
    #[should_panic(expected = "trial 7 exploded")]
    fn trial_panics_propagate() {
        Runner::with_threads(4).run(16, |i| {
            if i == 7 {
                panic!("trial 7 exploded");
            }
            i
        });
    }
}
