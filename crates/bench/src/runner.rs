//! Parallel trial execution for the experiment harnesses.
//!
//! Every experiment in this crate decomposes into *independent trials*
//! (one simulated machine per trial, seeded explicitly), so they
//! parallelize trivially: the runner fans trials out across worker
//! threads and returns results **in trial order**, which — because each
//! trial derives its RNG seed from its own index, never from shared
//! state — makes parallel output bit-identical to sequential output.
//!
//! The worker count comes from `SMACK_BENCH_THREADS` (set it to `1` to
//! benchmark the sequential baseline) and defaults to the machine's
//! available parallelism.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A pool configuration for running independent trials.
#[derive(Copy, Clone, Debug)]
pub struct Runner {
    threads: usize,
}

impl Runner {
    /// A runner with an explicit worker count (at least one).
    pub fn with_threads(threads: usize) -> Runner {
        Runner { threads: threads.max(1) }
    }

    /// A sequential runner (one worker, running inline).
    pub fn sequential() -> Runner {
        Runner::with_threads(1)
    }

    /// The standard runner: `SMACK_BENCH_THREADS` if set and valid,
    /// otherwise the machine's available parallelism.
    pub fn from_env() -> Runner {
        let threads = std::env::var("SMACK_BENCH_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|n| *n > 0)
            .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1));
        Runner::with_threads(threads)
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Run `f(0..n)` and collect the results in index order.
    ///
    /// `f` must derive any randomness from the trial index (or from data
    /// captured before the call), so the result for index `i` is the same
    /// no matter which worker runs it or in what order.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any trial.
    pub fn run<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let workers = self.threads.min(n);
        if workers == 1 {
            return (0..n).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<T>>> = Mutex::new((0..n).map(|_| None).collect());
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        let out = f(i);
                        slots.lock().expect("runner lock poisoned")[i] = Some(out);
                    })
                })
                .collect();
            for h in handles {
                if let Err(panic) = h.join() {
                    std::panic::resume_unwind(panic);
                }
            }
        });
        slots
            .into_inner()
            .expect("runner lock poisoned")
            .into_iter()
            .map(|s| s.expect("every trial index was visited"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn preserves_trial_order() {
        let r = Runner::with_threads(4);
        let out = r.run(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn sequential_and_parallel_agree() {
        let f = |i: usize| (i as u64).wrapping_mul(0x9e37_79b9).rotate_left(13);
        let seq = Runner::sequential().run(257, f);
        let par = Runner::with_threads(8).run(257, f);
        assert_eq!(seq, par);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = Runner::with_threads(3).run(50, |i| {
            counter.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(counter.load(Ordering::Relaxed), 50);
        assert_eq!(out.iter().copied().collect::<HashSet<_>>().len(), 50);
    }

    #[test]
    fn zero_trials_is_empty() {
        assert!(Runner::from_env().run(0, |i| i).is_empty());
    }

    #[test]
    fn thread_count_floors_at_one() {
        assert_eq!(Runner::with_threads(0).threads(), 1);
    }

    #[test]
    #[should_panic(expected = "trial 7 exploded")]
    fn trial_panics_propagate() {
        Runner::with_threads(4).run(16, |i| {
            if i == 7 {
                panic!("trial 7 exploded");
            }
            i
        });
    }
}
