//! Process-level sharding must be invisible in the output: running an
//! experiment as one shard (`--shard 1/1`) and as several merged shards
//! (`--shard {1,2}/2`) must produce byte-identical CSVs, because every
//! unit derives its seeds from its own index and the merge is a
//! deterministic sort-by-unit. These tests drive the registry exactly
//! like the CLI does, minus the process spawning.

use std::fs;
use std::path::PathBuf;

use smack_bench::registry::{self, RunSpec};
use smack_bench::report::merge_shard_dirs;
use smack_bench::runner::{Runner, Shard};
use smack_bench::Mode;

/// A scratch directory for one test, cleaned on entry.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smack-shard-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn spec(runner: Runner, out: &std::path::Path) -> RunSpec {
    RunSpec { mode: Mode::Quick, runner, out_dir: Some(out.to_path_buf()), tau_jitter: 0 }
}

#[test]
fn sharded_merge_is_bit_identical_to_the_solo_run() {
    // fig5 (4 units) and table4 (12 units) back to back: exercises
    // nonzero unit bases, multi-unit experiments, and the name union in
    // the directory merge.
    let selection = [registry::find("fig5").unwrap(), registry::find("table4").unwrap()];

    let solo_dir = scratch("solo");
    registry::run_selection(&selection, &spec(Runner::with_threads(2), &solo_dir));

    let shard_dirs: Vec<PathBuf> = (0..2)
        .map(|k| {
            let dir = scratch(&format!("shard{k}"));
            let runner = Runner::with_threads(2).with_shard(Shard::new(k, 2));
            registry::run_selection(&selection, &spec(runner, &dir));
            dir
        })
        .collect();

    let merged_dir = scratch("merged");
    let merged = merge_shard_dirs(&shard_dirs, &merged_dir).expect("merge succeeds");
    assert_eq!(merged.len(), 2, "fig5.csv and table4.csv");

    for name in ["fig5", "table4"] {
        let solo = fs::read(solo_dir.join(format!("{name}.csv"))).expect("solo CSV");
        let remerged = fs::read(merged_dir.join(format!("{name}.csv"))).expect("merged CSV");
        assert_eq!(
            String::from_utf8_lossy(&remerged),
            String::from_utf8_lossy(&solo),
            "{name}: merged shards must be bit-identical to the solo run"
        );
    }

    // Each shard's partial is unit-tagged and strictly smaller than the
    // merged whole (both experiments have >1 unit, so both shards own
    // some of each).
    for dir in &shard_dirs {
        for name in ["fig5", "table4"] {
            let part = fs::read_to_string(dir.join(format!("{name}.csv"))).expect("partial");
            assert!(part.starts_with("unit,"), "{name} partial is unit-tagged");
            let merged = fs::read_to_string(merged_dir.join(format!("{name}.csv"))).unwrap();
            assert!(part.lines().count() < merged.lines().count());
        }
    }

    for dir in shard_dirs.iter().chain([&solo_dir, &merged_dir]) {
        let _ = fs::remove_dir_all(dir);
    }
}

#[test]
fn single_unit_experiments_round_robin_across_shards() {
    // In a selection of consecutive single-unit experiments, the global
    // unit offset spreads them across shards instead of piling them all
    // on shard one.
    let selection = [
        registry::find("fig3").unwrap(),
        registry::find("fig4").unwrap(),
        registry::find("fig6").unwrap(),
    ];
    let mut owners = Vec::new();
    let mut base = 0usize;
    for exp in &selection {
        let total = (exp.units)(Mode::Quick);
        for k in 0..2 {
            let runner = Runner::sequential().with_shard(Shard::new(k, 2));
            if !runner.owned_units(base, total).is_empty() {
                owners.push(k);
            }
        }
        base += total;
    }
    assert_eq!(owners, vec![0, 1, 0], "alternating shard ownership");
}

#[test]
fn shard_unit_slices_partition_every_experiment() {
    // For every registered experiment and several shard counts, the
    // owned-unit slices are disjoint and cover 0..units.
    for exp in registry::registry() {
        let total = (exp.units)(Mode::Quick);
        for n in [1usize, 2, 3, 5] {
            let mut seen = Vec::new();
            for k in 0..n {
                let runner = Runner::sequential().with_shard(Shard::new(k, n));
                seen.extend(runner.owned_units(7, total));
            }
            seen.sort_unstable();
            assert_eq!(seen, (0..total).collect::<Vec<_>>(), "{} @ {n} shards", exp.name);
        }
    }
}
