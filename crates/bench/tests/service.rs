//! End-to-end tests of the fault-tolerant experiment service: the merged
//! CSVs of a distributed run must be byte-identical to a solo run even
//! when workers are killed mid-experiment, deliver torn CSVs, or hang
//! past their lease deadline.

use std::path::{Path, PathBuf};
use std::process::Command;

use smack_bench::registry;
use smack_bench::service::chaos::ChaosPlan;
use smack_bench::service::coordinator::{Service, ServiceConfig};
use smack_bench::service::worker::{run_worker, WorkerConfig};
use smack_bench::Mode;

/// A scratch directory for one test, cleaned on entry.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smack-service-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Run the `all` binary solo and return its CSV text per name.
fn solo_run(out: &Path, names: &[&str]) -> Vec<(String, String)> {
    let status = Command::new(env!("CARGO_BIN_EXE_all"))
        .args(names)
        .arg("--threads=2")
        .arg(format!("--out={}", out.display()))
        .env_remove("SMACK_CHAOS")
        .env("SMACK_CALIB_DIR", out.join("calib"))
        .status()
        .expect("spawning solo run");
    assert!(status.success(), "solo run failed: {status}");
    names.iter().map(|n| (format!("{n}.csv"), read(&out.join(format!("{n}.csv"))))).collect()
}

/// The headline guarantee: kill one worker after its first unit, hand a
/// second worker a torn CSV and a stalled heartbeat — the service
/// re-leases everything lost and the merged CSVs still match the solo
/// run byte for byte.
#[test]
fn chaos_run_merges_byte_identical_to_solo() {
    let root = scratch("chaos");
    let names = ["fig5", "table4"];
    let solo = solo_run(&root.join("solo"), &names);

    let svc_out = root.join("svc");
    let status = Command::new(env!("CARGO_BIN_EXE_all"))
        .args(names)
        .arg("--threads=2")
        .arg("--shards=2")
        .arg("--lease-ms=800")
        .arg("--timeout-ms=120000")
        .arg(format!("--out={}", svc_out.display()))
        // Worker 1 dies after its first unit (work lost after execution,
        // before reporting); worker 2 delivers its first result torn and
        // stalls its second lease past the deadline.
        .env("SMACK_CHAOS", "kill-after-unit=1@1,torn-write=1@2,stall-heartbeat=2@2")
        .env("SMACK_CALIB_DIR", root.join("solo").join("calib"))
        .status()
        .expect("spawning service run");
    assert!(status.success(), "service run failed: {status}");

    for (file, want) in &solo {
        let got = read(&svc_out.join(file));
        assert_eq!(&got, want, "{file} differs from the solo run under chaos");
    }
}

/// A worker that connects, drops one result (the lease must expire and
/// re-queue), then keeps serving: the run completes and the dropped unit
/// appears exactly once. Exercises Service::bind/addr with an in-process
/// worker thread instead of spawned processes.
#[test]
fn dropped_results_expire_and_requeue() {
    let root = scratch("drop");
    let names = ["fig5"];
    let solo = solo_run(&root.join("solo"), &names);

    let svc_out = root.join("svc");
    let selection = vec![registry::find("fig5").expect("fig5 registered")];
    let service = Service::bind(ServiceConfig {
        selection,
        mode: Mode::Quick,
        threads: Some(2),
        tau_jitter: 0,
        out_root: svc_out.clone(),
        bind: "127.0.0.1:0".to_owned(),
        workers: 0,
        lease_ms: 400,
        grace_ms: 60_000, // never degrade inline; the worker must do it all
        timeout_ms: 120_000,
        calib_dir: root.join("solo").join("calib"),
    })
    .expect("bind");
    let addr = service.addr().to_owned();
    let worker = std::thread::spawn(move || {
        run_worker(&WorkerConfig {
            connect: addr,
            threads: Some(2),
            id: "test-worker".to_owned(),
            chaos: ChaosPlan::parse("drop-result=2", 1).expect("chaos spec parses"),
        })
    });
    let summary = service.run().expect("service completes");
    let worker_summary = worker.join().expect("worker thread").expect("worker completes");

    assert_eq!(summary.stats.expired, 1, "the dropped result's lease expired");
    assert!(worker_summary.completed >= 4, "worker re-ran the dropped unit");
    for (file, want) in &solo {
        let got = read(&svc_out.join(file));
        assert_eq!(&got, want, "{file} differs from the solo run after a dropped result");
    }
}

/// With no workers at all, the coordinator degrades to in-process
/// execution after the grace period and still produces the solo bytes.
#[test]
fn coordinator_degrades_inline_without_workers() {
    let root = scratch("inline");
    let names = ["table4"];
    let solo = solo_run(&root.join("solo"), &names);

    let svc_out = root.join("svc");
    let selection = vec![registry::find("table4").expect("table4 registered")];
    let service = Service::bind(ServiceConfig {
        selection,
        mode: Mode::Quick,
        threads: Some(2),
        tau_jitter: 0,
        out_root: svc_out.clone(),
        bind: "127.0.0.1:0".to_owned(),
        workers: 0,
        lease_ms: 5_000,
        grace_ms: 50,
        timeout_ms: 120_000,
        calib_dir: root.join("solo").join("calib"),
    })
    .expect("bind");
    let summary = service.run().expect("inline degradation completes");
    assert_eq!(summary.inline_units as usize, summary.units, "every unit ran inline");
    for (file, want) in &solo {
        let got = read(&svc_out.join(file));
        assert_eq!(&got, want, "{file} differs from the solo run in degraded mode");
    }
}
