//! Burst scheduling is pure mechanics: `Machine` hands the engine
//! `burst` steps at a time, but every step makes the same causal-order
//! thread choice the per-instruction scheduler made, so experiment
//! output must be bit-identical for every burst size — and for the
//! decoded fast path vs the reference interpreter. These tests lock the
//! contract at the experiment level (covert-channel reports and RSA
//! attack traces); CI additionally diffs whole `target/repro/` trees at
//! `SMACK_BURST=1` vs the default.

use smack::channel::{random_payload, run_channel, ChannelSpec};
use smack::rsa::{build_victim, collect_trace_on, RsaAttackConfig};
use smack_crypto::Bignum;
use smack_uarch::{Machine, MicroArch, NoiseConfig, ProbeKind};

/// The configurations every experiment output must agree across:
/// burst 1 (the historical per-instruction scheduling), a deliberately
/// odd small burst, the default-scale burst, and the reference
/// interpreter at full burst.
const CONFIGS: [(u64, bool); 4] = [(1, true), (3, true), (4096, true), (4096, false)];

fn machine(seed: u64, burst: u64, decoded: bool) -> Machine {
    let mut m = Machine::with_noise(MicroArch::CascadeLake.profile(), NoiseConfig::quiet(), seed);
    m.set_burst_steps(burst);
    m.set_decoded_fast_path(decoded);
    m
}

#[test]
fn channel_reports_identical_across_burst_sizes() {
    for spec in
        [ChannelSpec::prime_probe(ProbeKind::Store), ChannelSpec::flush_reload(ProbeKind::Flush)]
    {
        let payload = random_payload(48, 11);
        let (b0, d0) = CONFIGS[0];
        let baseline =
            run_channel(&mut machine(7, b0, d0), &spec, &payload, false).expect("channel runs");
        for (burst, decoded) in &CONFIGS[1..] {
            let got = run_channel(&mut machine(7, *burst, *decoded), &spec, &payload, false)
                .expect("channel runs");
            assert_eq!(
                got,
                baseline,
                "{} diverged at burst={burst} decoded={decoded}",
                spec.name()
            );
        }
    }
}

#[test]
fn rsa_traces_identical_across_burst_sizes() {
    let cfg = RsaAttackConfig::new(ProbeKind::Store);
    let victim = build_victim(&cfg);
    let exp = Bignum::from_hex("b5a96e1dc3f47a2b");
    let (b0, d0) = CONFIGS[0];
    let baseline = collect_trace_on(&mut machine(13, b0, d0), &victim, &exp, &cfg, 13, None)
        .expect("trace collects");
    assert!(!baseline.samples.is_empty(), "attack produced samples");
    for (burst, decoded) in &CONFIGS[1..] {
        let got =
            collect_trace_on(&mut machine(13, *burst, *decoded), &victim, &exp, &cfg, 13, None)
                .expect("trace collects");
        assert_eq!(got, baseline, "trace diverged at burst={burst} decoded={decoded}");
    }
}
