//! Integration tests for the parallel experiment runner: parallel
//! execution must produce exactly the sequential results (every trial
//! seeds its own RNG from the trial index), and quick mode must stay
//! CI-sized.

use smack_bench::experiments::table2_rows;
use smack_bench::runner::Runner;
use smack_bench::Mode;

#[test]
fn parallel_and_sequential_table2_agree_exactly() {
    // Table 2 is the densest trial grid (group sizes x keys, SMaCk and
    // Mastik per cell); identical aggregates here mean the runner neither
    // reorders nor cross-contaminates trials.
    let seq = table2_rows(Mode::Quick, &Runner::sequential());
    let par = table2_rows(Mode::Quick, &Runner::with_threads(4));
    assert_eq!(seq.len(), par.len());
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.group_bits, b.group_bits);
        assert!(
            a.smack.to_bits() == b.smack.to_bits() && a.mastik.to_bits() == b.mastik.to_bits(),
            "group {}: sequential ({}, {}) != parallel ({}, {})",
            a.group_bits,
            a.smack,
            a.mastik,
            b.smack,
            b.mastik
        );
    }
}

#[test]
fn quick_mode_trial_counts_stay_ci_sized() {
    // `all` in quick mode must stay a smoke test: these knobs bound the
    // heavy experiments' trial counts. Full mode must stay paper-scale.
    assert_eq!(Mode::Quick.pick(3, 100), 3, "table2 keys per group");
    assert_eq!(Mode::Quick.pick(12, 25), 12, "fig5 trace budget");
    assert_eq!(Mode::Quick.pick(100, 10_000), 100, "fig1 samples");
    assert_eq!(Mode::Quick.pick(300, 4_000), 300, "table1 payload bits");
    assert_eq!(Mode::Full.pick(3, 100), 100);
}

#[test]
fn quick_table2_is_fast_enough_for_ci() {
    // The whole grid (4 groups x 3 keys, two monitors per cell) must
    // complete promptly — this is the heaviest single experiment `all`
    // runs in quick mode.
    let start = std::time::Instant::now();
    let rows = table2_rows(Mode::Quick, &Runner::from_env());
    assert_eq!(rows.len(), smack_crypto::SrpGroup::PAPER_SIZES.len());
    for row in &rows {
        assert!(row.smack > row.mastik, "SMaCk must beat Mastik at {} bits", row.group_bits);
    }
    assert!(
        start.elapsed() < std::time::Duration::from_secs(120),
        "quick-mode table2 took {:?}",
        start.elapsed()
    );
}
