//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion API the `smack-bench` bench
//! targets use: [`Criterion::benchmark_group`], group `sample_size` /
//! `throughput` / `bench_function` / `finish`, [`Bencher::iter`],
//! [`black_box`], and the [`criterion_group!`] / [`criterion_main!`]
//! macros. Bench targets must set `harness = false`, exactly as with the
//! real crate.
//!
//! Measurement is intentionally simple: a short warm-up, then timed
//! batches whose mean/min per-iteration wall time is printed. Honouring
//! `--bench`-style CLI filters: the first free argument, if any, filters
//! benchmark ids by substring. `cargo test` also passes `--test`-style
//! flags to harness-less targets; anything starting with `-` is ignored.

use std::time::{Duration, Instant};

/// Opaque value barrier, preventing the optimiser from deleting a
/// computation whose result is otherwise unused.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Copy, Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Run `f` repeatedly, timing each invocation.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (untimed).
        for _ in 0..2 {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    filter: Option<String>,
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter, sample_size: 10 }
    }
}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_owned(),
            sample_size: None,
            throughput: None,
        }
    }

    /// Run a single ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        let sample_size = self.sample_size;
        run_one(self.filter.as_deref(), id, sample_size, None, f);
        self
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<u64>,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let n = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_one(self.criterion.filter.as_deref(), &full, n, self.throughput, f);
        self
    }

    /// End the group (parity with the real API; nothing to flush).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    filter: Option<&str>,
    id: &str,
    iters: u64,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !id.contains(pat) {
            return;
        }
    }
    let mut b = Bencher { iters: iters.max(1), elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.as_secs_f64() / b.iters as f64;
    let rate = throughput.map(|t| match t {
        Throughput::Elements(n) => format!("  {:.3e} elem/s", n as f64 / per_iter),
        Throughput::Bytes(n) => format!("  {:.3e} B/s", n as f64 / per_iter),
    });
    println!(
        "bench: {id:<44} {:>12.3} us/iter ({} iters){}",
        per_iter * 1e6,
        b.iters,
        rate.unwrap_or_default()
    );
}

/// Bundle benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit a `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut calls = 0u64;
        let mut b = Bencher { iters: 5, elapsed: Duration::ZERO };
        b.iter(|| calls += 1);
        // 2 warm-up + 5 timed.
        assert_eq!(calls, 7);
    }

    #[test]
    fn group_runs_and_filters() {
        let mut c = Criterion { filter: Some("match_me".into()), sample_size: 3 };
        let mut ran = Vec::new();
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(3);
            g.bench_function("match_me", |b| b.iter(|| ran.push("a")));
            g.finish();
        }
        {
            let mut g = c.benchmark_group("g");
            g.bench_function("skipped", |b| b.iter(|| ran.push("b")));
            g.finish();
        }
        assert!(ran.contains(&"a"));
        assert!(!ran.contains(&"b"));
    }
}
