//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map`,
//! `any::<T>()`, integer-range strategies, [`collection::vec`],
//! [`prop_oneof!`], `prop_assert!`/`prop_assert_eq!`/`prop_assume!` and
//! [`ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the sampled inputs and the case number so it can be reproduced (the
//! generator is deterministic per test name, so reruns fail identically).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Test-run configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` — try another input.
    Reject(String),
    /// The case failed an assertion.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic generator handed to strategies.
pub type TestRng = SmallRng;

/// A source of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

/// A mapped strategy (see [`Strategy::prop_map`]).
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A boxed, type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Uniform choice between several strategies of the same value type
/// (the engine behind [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from boxed arms; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].sample(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.gen()
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(core::marker::PhantomData<fn() -> T>);

/// Strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy always producing a clone of one value
/// (`proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($S:ident/$i:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A / 0, B / 1);
impl_tuple_strategy!(A / 0, B / 1, C / 2);
impl_tuple_strategy!(A / 0, B / 1, C / 2, D / 3);

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty length range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Derive a stable 64-bit seed from a test's name (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Run `body` against `config.cases` sampled inputs. Used by the
/// [`proptest!`] macro expansion; not part of the public proptest API.
pub fn run_cases<F>(name: &str, config: &ProptestConfig, mut body: F)
where
    F: FnMut(&mut TestRng) -> (String, TestCaseResult),
{
    let mut passed = 0u32;
    let mut rejected = 0u64;
    let max_rejects = 10_000u64.max(config.cases as u64 * 64);
    let mut case = 0u64;
    while passed < config.cases {
        let mut rng =
            TestRng::seed_from_u64(seed_for(name) ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let (inputs, result) = body(&mut rng);
        match result {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{name}: too many prop_assume! rejections ({rejected})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("{name}: property failed at case {case}\n  inputs: {inputs}\n  {msg}");
            }
        }
        case += 1;
    }
}

/// Define property tests. Mirrors proptest's macro of the same name for
/// the forms used in this workspace.
#[macro_export]
macro_rules! proptest {
    // Peel one `#![proptest_config(..)]` line into the accumulator.
    ( @cfgs [$($cfgs:tt)*] #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::proptest! { @cfgs [$($cfgs)* { $cfg }] $($rest)* }
    };
    // No more config lines: hand off to the test expander.
    ( @cfgs [$($cfgs:tt)*] $($rest:tt)* ) => {
        $crate::__proptest_impl! { [$($cfgs)*] $($rest)* }
    };
    ( $($all:tt)* ) => {
        $crate::proptest! { @cfgs [] $($all)* }
    };
}

/// Select the last of the `#![proptest_config(..)]` expressions, or the
/// default when none were given. Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_config {
    ([]) => { $crate::ProptestConfig::default() };
    ([ { $cfg:expr } ]) => { $cfg };
    ([ { $first:expr } $({ $rest:expr })+ ]) => {
        $crate::__proptest_config!([ $({ $rest })+ ])
    };
}

/// Implementation detail of [`proptest!`]: the configs arrive as one token
/// tree so they can be referenced inside the per-test repetition.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        $cfgs:tt
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $crate::__proptest_config!($cfgs);
                $crate::run_cases(stringify!($name), &config, |prop_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), prop_rng);)+
                    let inputs = [
                        $(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),+
                    ].join(", ");
                    let result = (|| -> $crate::TestCaseResult {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    (inputs, result)
                });
            }
        )*
    };
}

/// Assert a boolean property inside `proptest!`.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n  right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n  right: {:?}",
            stringify!($lhs), stringify!($rhs), format!($($fmt)+), lhs, rhs
        );
    }};
}

/// Assert inequality inside `proptest!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), lhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{} != {}` ({})\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), format!($($fmt)+), lhs
        );
    }};
}

/// Discard the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::seed_for("abc"), crate::seed_for("abc"));
        assert_ne!(crate::seed_for("abc"), crate::seed_for("abd"));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn addition_commutes(a in any::<u32>(), b in any::<u32>()) {
            prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(any::<u8>(), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7, "len {}", v.len());
        }

        #[test]
        fn assume_rejects_dont_hang(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_samples_all_arms(x in prop_oneof![0u8..1, 10u8..11, 20u8..21]) {
            prop_assert!(x == 0 || x == 10 || x == 20);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_inputs() {
        crate::run_cases("doomed", &ProptestConfig::with_cases(8), |rng| {
            let x = crate::Strategy::sample(&(0u64..10), rng);
            let inputs = format!("x = {x:?}");
            let result = (|| -> TestCaseResult {
                prop_assert!(x > 100, "x was {}", x);
                Ok(())
            })();
            (inputs, result)
        });
    }
}
