//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no network access and no vendored registry, so
//! this workspace carries a minimal, deterministic implementation of exactly
//! the surface the reproduction uses:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range`, `gen_bool` and `fill`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::SmallRng`] — an xoshiro256** generator seeded via SplitMix64
//!   (the same construction the real `SmallRng` uses on 64-bit targets),
//! * [`seq::SliceRandom`] with `shuffle` and `choose`.
//!
//! Determinism is a hard requirement for the reproduction (every experiment
//! seeds its RNG explicitly), so there is deliberately no `thread_rng` and
//! no `from_entropy` here: code that wants randomness must take a seed.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let v = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&v[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `RngCore`.
pub trait Standard: Sized {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges (half-open and inclusive) a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range; panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + reject_sample(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + reject_sample(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Unbiased uniform draw in `[0, bound)` by rejection (Lemire-style).
fn reject_sample<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound) - 1;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

/// High-level convenience methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    /// Sample a value of an inferred type uniformly.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A biased coin flip.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }

    /// Fill a byte slice with random data.
    fn fill(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Derive a full generator state from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256** seeded through
    /// SplitMix64, matching the construction of `rand`'s 64-bit `SmallRng`).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(state: u64) -> SmallRng {
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (0..=i).sample_from(&mut *rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = (0..self.len()).sample_from(&mut *rng);
                Some(&self[i])
            }
        }
    }
}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_instances() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..13);
            assert!(v < 13);
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let x: f64 = rng.gen_range(-0.5..0.5);
            assert!((-0.5..0.5).contains(&x));
        }
    }

    #[test]
    fn gen_range_covers_extremes() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn shuffle_is_permutation_and_deterministic() {
        let mut v1: Vec<u32> = (0..20).collect();
        let mut v2: Vec<u32> = (0..20).collect();
        let mut r1 = SmallRng::seed_from_u64(3);
        let mut r2 = SmallRng::seed_from_u64(3);
        v1.shuffle(&mut r1);
        v2.shuffle(&mut r2);
        assert_eq!(v1, v2);
        let mut sorted = v1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
        assert_ne!(v1, (0..20).collect::<Vec<_>>(), "shuffle should move elements");
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
