//! Session-layer regression tests: a reset (pooled) machine must be
//! bit-identical to a fresh one for whole attack pipelines, and the
//! calibration cache must calibrate at most once per
//! `(profile, probe class, cold placement, noise)` while returning values
//! equal to a fresh computation.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use smack::channel::{random_payload, run_channel, run_channel_in, ChannelSpec};
use smack::rsa::{self, RsaAttackConfig};
use smack::session::{Scenario, Sessions};
use smack::srp::{self, SrpAttackConfig};
use smack_crypto::Bignum;
use smack_uarch::{Machine, MicroArch, NoiseConfig, Placement, ProbeKind};

/// Drive a machine through an unrelated noisy workload so its caches,
/// TLBs, predictor, memory and RNG are thoroughly dirty before the reset.
fn dirty(machine: &mut Machine) {
    let payload = random_payload(40, 0xd1);
    run_channel(machine, &ChannelSpec::prime_probe(ProbeKind::Flush), &payload, false)
        .expect("dirtying channel runs");
    machine.write_u64(smack_uarch::Addr(0x0b00_0000), u64::MAX);
}

#[test]
fn reset_machine_reproduces_channel_report_bit_identically() {
    let profile = MicroArch::CascadeLake.profile();
    let payload = random_payload(96, 0xd5);
    let spec = ChannelSpec::prime_probe(ProbeKind::Store);

    let mut fresh = Machine::with_noise(profile.clone(), NoiseConfig::realistic(), 0xfeed);
    let want = run_channel(&mut fresh, &spec, &payload, true).expect("fresh channel runs");

    let mut reused = Machine::with_noise(profile, NoiseConfig::realistic(), 0x0ddba11);
    dirty(&mut reused);
    reused.reset(NoiseConfig::realistic(), 0xfeed);
    let got = run_channel(&mut reused, &spec, &payload, true).expect("reset channel runs");

    assert_eq!(want, got, "reset must erase every trace of the previous trial");
}

#[test]
fn reset_machine_reproduces_rsa_trace_bit_identically() {
    let mut rng = SmallRng::seed_from_u64(9);
    let exp = Bignum::random_bits(&mut rng, 96);
    let cfg = RsaAttackConfig::new(ProbeKind::Flush);
    let victim = rsa::build_victim(&cfg);
    let want =
        rsa::collect_trace(MicroArch::TigerLake, &victim, &exp, &cfg, 0x51).expect("fresh trace");

    let sessions = Sessions::new();
    let scenario = Scenario::new(MicroArch::TigerLake).with_noise(cfg.noise).with_seed(0x51);
    // First session: machine is built. Dirty it via a different trace,
    // then renew — same pooled machine, reset in place.
    let mut session = sessions.session(&scenario.clone().with_seed(0x99));
    rsa::collect_trace_in(&mut session, &victim, &exp, &cfg).expect("dirtying trace");
    session.renew(0x51);
    let via_renew = rsa::collect_trace_in(&mut session, &victim, &exp, &cfg).expect("renewed");
    drop(session);

    // Second session with the same scenario: served from the shelf.
    let mut session = sessions.session(&scenario);
    assert!(sessions.pool().stats().reused >= 1, "second checkout must reuse");
    let via_pool = rsa::collect_trace_in(&mut session, &victim, &exp, &cfg).expect("pooled");

    assert_eq!(via_renew.samples, via_pool.samples);
    assert_eq!(via_renew.victim_cycles, via_pool.victim_cycles);
    // The standalone path interleaves its calibration with the trial
    // machine's timeline, so it is a *different* (also deterministic)
    // experiment — both must land in the same sample-count ballpark.
    let (a, b) = (want.samples.len() as f64, via_pool.samples.len() as f64);
    assert!((a - b).abs() / a < 0.1, "standalone {a} vs session {b} samples");
}

#[test]
fn session_channel_is_deterministic_across_pool_reuse() {
    let sessions = Sessions::new();
    let scenario = Scenario::new(MicroArch::CascadeLake).with_noise(NoiseConfig::noisy());
    let payload = random_payload(64, 0x7ab1e1);
    let spec = ChannelSpec::flush_reload(ProbeKind::Flush);

    let mut first = sessions.session(&scenario);
    let a = run_channel_in(&mut first, &spec, &payload, true).expect("first run");
    drop(first);
    let mut second = sessions.session(&scenario);
    let b = run_channel_in(&mut second, &spec, &payload, true).expect("second run");

    assert!(sessions.pool().stats().reused >= 1);
    assert_eq!(a, b, "a pooled rerun of the same scenario is bit-identical");
}

#[test]
fn campaign_calibrates_once_per_key() {
    // The fig5-style campaign: many traces per probe class, one process.
    let sessions = Sessions::new();
    let mut rng = SmallRng::seed_from_u64(0x5e551);
    let exp = Bignum::random_bits(&mut rng, 64);
    let kinds = [ProbeKind::Flush, ProbeKind::Store];
    for kind in kinds {
        let cfg = RsaAttackConfig::new(kind);
        let victim = rsa::build_victim(&cfg);
        let scenario = Scenario::new(MicroArch::TigerLake).with_noise(cfg.noise);
        let mut session = sessions.session(&scenario);
        for trace_idx in 0..4u64 {
            session.renew(2_000 + trace_idx);
            rsa::collect_trace_in(&mut session, &victim, &exp, &cfg).expect("trace");
        }
    }
    let cal = sessions.calibrations();
    assert_eq!(cal.misses(), kinds.len() as u64, "one calibration per probe class");
    assert_eq!(cal.hits(), (kinds.len() * 3) as u64, "every later trace hits the cache");
}

#[test]
fn cached_calibration_equals_fresh_computation() {
    let sessions = Sessions::new();
    let session = sessions.session(&Scenario::new(MicroArch::TigerLake));
    for kind in [ProbeKind::Flush, ProbeKind::Store, ProbeKind::Lock, ProbeKind::Clwb] {
        for cold in [Placement::L2, Placement::DramOnly] {
            let cached = session.calibrated(kind, cold).expect("calibrates");
            let fresh = session.recalibrate(kind, cold).expect("recalibrates");
            assert_eq!(cached, fresh, "{kind}/{cold}: cache must be a pure function of its key");
        }
    }
}

#[test]
fn srp_session_attack_matches_shapes_and_reuses_machines() {
    let sessions = Sessions::new();
    let mut rng = SmallRng::seed_from_u64(44);
    let b = Bignum::random_bits(&mut rng, 128);
    let cfg = SrpAttackConfig { noise: NoiseConfig::quiet(), ..SrpAttackConfig::new(4096) };
    let scenario = Scenario::new(MicroArch::TigerLake).with_noise(cfg.noise).with_seed(3);

    let mut session = sessions.session(&scenario);
    let first = srp::single_trace_attack_in(&mut session, &b, &cfg).expect("attack runs");
    drop(session);
    let mut session = sessions.session(&scenario);
    let second = srp::single_trace_attack_in(&mut session, &b, &cfg).expect("attack reruns");

    assert!(first.leakage > 0.5, "leakage {}", first.leakage);
    assert_eq!(first.samples, second.samples, "pooled rerun is bit-identical");
    let stats = sessions.pool().stats();
    assert!(stats.reused >= 1, "stats: {stats:?}");
}
