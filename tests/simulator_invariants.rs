//! Cross-crate invariants of the simulator, checked through public APIs —
//! including property-based tests over random programs and probe patterns.

use proptest::prelude::*;
use smack::oracle::{EvictionSet, OraclePage};
use smack::probe::Prober;
use smack_uarch::asm::Assembler;
use smack_uarch::isa::Reg;
use smack_uarch::{
    Addr, Machine, MicroArch, NoiseConfig, Placement, ProbeKind, SmcBehavior, ThreadId,
};

const T0: ThreadId = ThreadId::T0;

#[test]
fn machines_are_deterministic_for_equal_seeds() {
    let run = |seed: u64| -> Vec<u64> {
        let mut m =
            Machine::with_noise(MicroArch::CascadeLake.profile(), NoiseConfig::noisy(), seed);
        OraclePage::build(Addr(0x2_0000), 1).install(&mut m);
        let mut p = Prober::new(T0);
        (0..32)
            .map(|i| {
                let placement = if i % 2 == 0 { Placement::L1i } else { Placement::L2 };
                m.place_line(Addr(0x2_0000), placement);
                p.measure(&mut m, ProbeKind::Store, Addr(0x2_0000)).unwrap().cycles
            })
            .collect()
    };
    assert_eq!(run(9), run(9), "same seed, same timings");
    assert_ne!(run(9), run(10), "different seed, different jitter");
}

#[test]
fn table3_matrix_consistency_probe_timings() {
    // On every part, for every supported probe class: if the matrix says
    // Triggers, the L1i-hot timing must dominate the L2-cold timing.
    for arch in MicroArch::ALL {
        let profile = arch.profile();
        for kind in ProbeKind::ALL {
            if profile.smc.get(kind) != SmcBehavior::Triggers {
                continue;
            }
            let mut m = Machine::new(arch.profile());
            OraclePage::build(Addr(0x3_0000), 1).install(&mut m);
            m.warm_tlb(T0, Addr(0x3_0000));
            let mut p = Prober::new(T0);
            m.place_line(Addr(0x3_0000), Placement::L1i);
            let hot = p.measure(&mut m, kind, Addr(0x3_0000)).unwrap().cycles;
            m.place_line(Addr(0x3_0000), Placement::L2);
            let cold = p.measure(&mut m, kind, Addr(0x3_0000)).unwrap().cycles;
            assert!(hot > cold + 80, "{arch}/{kind}: hot {hot} must dominate cold {cold}");
        }
    }
}

#[test]
fn victim_architectural_results_survive_the_attack() {
    // Running an attack against a computing victim must never change the
    // victim's architectural outputs (only its timing).
    let mut a = Assembler::new(0x50_0000);
    a.mov_imm(Reg::R0, 0)
        .mov_imm(Reg::R2, 1)
        .label("l")
        .add(Reg::R0, Reg::R2)
        .add_imm(Reg::R2, 1)
        .cmp_imm(Reg::R2, 200)
        .jne("l")
        .halt();
    let prog = a.assemble().unwrap();

    let run = |attack: bool| -> u64 {
        let mut m = Machine::new(MicroArch::CascadeLake.profile());
        m.load_program(&prog);
        let ev = EvictionSet::for_machine(&m, 0x10_0000, 3);
        ev.install(&mut m);
        let mut p = Prober::new(T0);
        m.start_program(ThreadId::T1, prog.entry(), &[]);
        while m.state(ThreadId::T1) == smack_uarch::ThreadState::Running {
            if attack {
                ev.prime(&mut m, &mut p).unwrap();
                ev.probe(&mut m, &mut p, ProbeKind::Store).unwrap();
            } else {
                m.advance(T0, 500).unwrap();
            }
        }
        m.reg(ThreadId::T1, Reg::R0)
    };
    let clean = run(false);
    let attacked = run(true);
    assert_eq!(clean, attacked, "attack must not corrupt victim results");
    assert_eq!(clean, (1..200).sum::<u64>());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_probe_sequences_never_wedge_the_machine(
        kinds in proptest::collection::vec(0usize..9, 1..24),
        seed in any::<u64>(),
    ) {
        let mut m = Machine::with_noise(
            MicroArch::CascadeLake.profile(),
            NoiseConfig::realistic(),
            seed,
        );
        OraclePage::build(Addr(0x2_0000), 4).install(&mut m);
        let mut p = Prober::new(T0);
        let mut last_clock = 0;
        for (i, k) in kinds.iter().enumerate() {
            let kind = ProbeKind::ALL[*k];
            let line = Addr(0x2_0000 + ((i as u64 % 4) * 64));
            let t = p.measure(&mut m, kind, line);
            prop_assert!(t.is_ok(), "{kind} failed: {:?}", t.err());
            let now = m.clock(T0);
            prop_assert!(now > last_clock, "clock must advance");
            last_clock = now;
        }
    }

    #[test]
    fn prop_prime_always_owns_the_set(set in 0usize..64, seed in any::<u64>()) {
        let mut m = Machine::with_noise(
            MicroArch::CascadeLake.profile(),
            NoiseConfig::quiet(),
            seed,
        );
        let ev = EvictionSet::for_machine(&m, 0x10_0000, set);
        ev.install(&mut m);
        let mut p = Prober::new(T0);
        ev.prime(&mut m, &mut p).unwrap();
        for w in ev.ways() {
            prop_assert!(m.residency(*w).l1i);
        }
    }
}
