//! Protocol-level round trips through the public crypto APIs, as a
//! downstream user of `smack-crypto` would exercise them.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use smack_crypto::srp::{register, SrpClient, SrpServer};
use smack_crypto::{Bignum, RsaKeyPair, Sha256, SrpGroup};

#[test]
fn rsa_round_trip_through_public_api() {
    let mut rng = SmallRng::seed_from_u64(100);
    let key = RsaKeyPair::generate(128, &mut rng);
    let m = Bignum::from_bytes_be(b"attack at dawn");
    assert_eq!(key.decrypt(&key.encrypt(&m)), m);
}

#[test]
fn srp_login_and_schedule_ground_truth() {
    let group = SrpGroup::synthetic(1024);
    let mut rng = SmallRng::seed_from_u64(101);
    let v = register(&group, "bob", "pw123", b"pepper");
    let client = SrpClient::start(&group, &mut rng);
    let server = SrpServer::start(&group, &v, &mut rng);
    assert_eq!(
        server.calc_server_key(client.public_a()),
        client.calc_client_key(server.public_b(), "bob", "pw123", server.salt()),
    );
    // The schedule the attack recovers is exactly the schedule of b.
    let schedule = server.server_key_schedule();
    assert_eq!(schedule, smack_crypto::modexp::sliding_window_schedule(server.secret_b()));
}

#[test]
fn sha256_vector() {
    assert_eq!(
        Sha256::to_hex(&Sha256::digest(b"smack")),
        // Cross-checked against coreutils sha256sum.
        "4e6750b2ca08feb9581dd5f41711eb8c279965ca5a2332c398e6988b16798f56",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn prop_modexp_algorithms_agree_via_public_api(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = Bignum::random_bits(&mut rng, 96);
        if m.is_even() {
            m = m.add(&Bignum::one());
        }
        let e = Bignum::random_bits(&mut rng, 48);
        let b = Bignum::random_below(&mut rng, &m);
        let r1 = smack_crypto::modexp::binary_ltr(&b, &e, &m);
        let r2 = smack_crypto::modexp::sliding_window(&b, &e, &m);
        let r3 = smack_crypto::modexp::montgomery_ladder(&b, &e, &m);
        prop_assert_eq!(&r1, &r2);
        prop_assert_eq!(&r1, &r3);
    }

    #[test]
    fn prop_known_bits_never_exceed_exponent(seed in any::<u64>(), bits in 8usize..512) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let e = Bignum::random_bits(&mut rng, bits);
        let s = smack_crypto::modexp::sliding_window_schedule(&e);
        prop_assert_eq!(s.known_bits.len(), bits);
        // The MSB is always recoverable (it starts the first window).
        prop_assert!(s.known_bits[bits - 1]);
    }
}
