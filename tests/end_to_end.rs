//! Cross-crate integration tests: each paper case study exercised through
//! the public APIs, end to end.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use smack::channel::{random_payload, run_channel, ChannelSpec};
use smack::ispectre::{leak_secret, ISpectreConfig};
use smack::rsa::{build_victim, collect_trace, decode_trace, score_bits, RsaAttackConfig};
use smack::srp::{single_trace_attack, SrpAttackConfig};
use smack_crypto::{Bignum, RsaKeyPair};
use smack_uarch::{Machine, MicroArch, NoiseConfig, ProbeKind};

#[test]
fn covert_channel_transmits_text() {
    let message = b"hi";
    let payload: Vec<bool> =
        message.iter().flat_map(|b| (0..8).rev().map(move |i| (b >> i) & 1 == 1)).collect();
    let mut m = Machine::new(MicroArch::CascadeLake.profile());
    let r = run_channel(&mut m, &ChannelSpec::flush_reload(ProbeKind::Flush), &payload, false)
        .expect("channel runs");
    assert_eq!(r.decoded.len(), payload.len());
    let errors = r.decoded.iter().zip(&payload).filter(|(a, b)| a != b).count();
    assert!(errors <= 1, "at most one bit error in 16 bits, got {errors}");
}

#[test]
fn rsa_attack_recovers_real_private_exponent() {
    // A real key pair from the crypto substrate; the attack only observes
    // the simulated victim's cache footprint.
    let mut rng = SmallRng::seed_from_u64(11);
    let key = RsaKeyPair::generate(128, &mut rng);
    let cfg =
        RsaAttackConfig { noise: NoiseConfig::quiet(), ..RsaAttackConfig::new(ProbeKind::Flush) };
    let victim = build_victim(&cfg);
    let trace =
        collect_trace(MicroArch::TigerLake, &victim, key.d(), &cfg, 1).expect("trace collects");
    let decoded = decode_trace(&trace, key.d().bit_len());
    let rate = score_bits(&decoded, key.d());
    assert!(rate > 0.5, "paper-level single-trace recovery, got {rate}");
}

#[test]
fn srp_attack_leaks_ephemeral_exponent() {
    let mut rng = SmallRng::seed_from_u64(12);
    let b = Bignum::random_bits(&mut rng, 128);
    let cfg = SrpAttackConfig { noise: NoiseConfig::quiet(), ..SrpAttackConfig::new(4096) };
    let out = single_trace_attack(MicroArch::TigerLake, &b, &cfg, 2).expect("attack runs");
    assert!(out.leakage > 0.4, "single-trace SRP leakage, got {}", out.leakage);
}

#[test]
fn ispectre_leaks_secret_bytes() {
    let secret = b"spec";
    let cfg = ISpectreConfig::new(ProbeKind::Store);
    let r = leak_secret(MicroArch::CascadeLake, secret, &cfg, 3).expect("attack runs");
    assert!(r.success_rate >= 0.75, "got {}", r.success_rate);
    assert!(r.machine_clears > 0);
}

#[test]
fn ispectre_fails_where_table3_says_so() {
    // Execute-reload never leaks (Table 3's all-# row).
    let secret = b"xy";
    let cfg = ISpectreConfig::new(ProbeKind::Execute);
    let r = leak_secret(MicroArch::CascadeLake, secret, &cfg, 4).expect("attack runs");
    assert!(r.success_rate < 0.5, "execute must not leak, got {}", r.success_rate);
}

#[test]
fn channels_fail_on_parts_without_the_instruction() {
    let payload = random_payload(16, 1);
    // clwb does not exist before Cascade Lake: the channel must refuse.
    let mut m = Machine::new(MicroArch::IvyBridge.profile());
    let err = run_channel(&mut m, &ChannelSpec::prime_probe(ProbeKind::Clwb), &payload, false)
        .unwrap_err();
    assert!(err.contains("unsupported"), "{err}");
}

#[test]
fn detection_separates_attack_from_benign() {
    let cfg = smack_detection::DetectionConfig {
        window_cycles: 60_000,
        windows_per_run: 4,
        ..Default::default()
    };
    let benign = smack_detection::benign_windows(
        MicroArch::CascadeLake,
        smack_victims::BenignWorkload::MatMul,
        &cfg,
        5,
    )
    .expect("benign windows");
    let attacks = smack_detection::attack_windows(
        MicroArch::CascadeLake,
        smack_detection::AttackLoop::PrimeProbe(ProbeKind::Store),
        &cfg,
        6,
    )
    .expect("attack windows");
    let r = smack_detection::evaluate(
        smack_detection::FeatureSet::MachineClearsSmc,
        &benign,
        &attacks,
        7,
    );
    assert!(r.f1 > 0.9, "F1 {}", r.f1);
}

#[test]
fn constant_time_ladder_defeats_the_attack() {
    // §6.2: against the Montgomery-ladder victim, the attacker's decode is
    // *identical for different keys* — the trace carries no key
    // information. Against the leaky victim, different keys give
    // different decodes.
    use smack_victims::modexp::{ModexpAlgorithm, ModexpVictimBuilder};
    let mut rng = SmallRng::seed_from_u64(61);
    let key_a = Bignum::random_bits(&mut rng, 96);
    let mut key_b = Bignum::random_bits(&mut rng, 96);
    while key_b == key_a {
        key_b = key_b.add(&Bignum::from_u64(2));
    }
    let cfg =
        RsaAttackConfig { noise: NoiseConfig::quiet(), ..RsaAttackConfig::new(ProbeKind::Flush) };
    let decode_with = |algorithm: ModexpAlgorithm, key: &Bignum| -> Vec<bool> {
        let mut builder = ModexpVictimBuilder::new(algorithm);
        builder.operand_bits(cfg.operand_bits);
        let victim = builder.build();
        let trace =
            collect_trace(MicroArch::TigerLake, &victim, key, &cfg, 1).expect("trace collects");
        decode_trace(&trace, key.bit_len())
    };
    let ladder_a = decode_with(ModexpAlgorithm::MontgomeryLadder, &key_a);
    let ladder_b = decode_with(ModexpAlgorithm::MontgomeryLadder, &key_b);
    assert_eq!(ladder_a, ladder_b, "constant-time victim: key-independent traces");
    let leaky_a = decode_with(ModexpAlgorithm::BinaryLtr, &key_a);
    let leaky_b = decode_with(ModexpAlgorithm::BinaryLtr, &key_b);
    assert_ne!(leaky_a, leaky_b, "leaky victim: key-dependent traces");
}
