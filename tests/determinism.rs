//! Reproducibility regression tests: every stochastic component is seeded,
//! so re-running an experiment with the same seed must give bit-identical
//! results. (The offline `rand` shim deliberately has no `thread_rng` or
//! `from_entropy`, so unseeded randomness cannot even compile.)

use rand::rngs::SmallRng;
use rand::SeedableRng;
use smack::channel::{random_payload, run_channel, ChannelSpec};
use smack::rsa::{build_victim, collect_trace, decode_trace, RsaAttackConfig};
use smack_crypto::Bignum;
use smack_uarch::{Machine, MicroArch, NoiseConfig, ProbeKind};

fn channel_run(seed: u64) -> smack::channel::ChannelReport {
    let payload = random_payload(96, 0xd5);
    let mut m =
        Machine::with_noise(MicroArch::CascadeLake.profile(), NoiseConfig::realistic(), seed);
    run_channel(&mut m, &ChannelSpec::prime_probe(ProbeKind::Store), &payload, true)
        .expect("channel runs")
}

#[test]
fn covert_channel_same_seed_is_bit_identical() {
    let a = channel_run(0xfeed);
    let b = channel_run(0xfeed);
    assert_eq!(a, b, "same machine seed must reproduce the exact ChannelReport");
}

#[test]
fn covert_channel_different_seeds_differ_somewhere() {
    // Noise seeds drive the injected evictions; distinct seeds should give
    // observably different traces (if not, the noise model is dead).
    let a = channel_run(0xfeed);
    let b = channel_run(0xbeef);
    assert_ne!(a.trace, b.trace, "different noise seeds should perturb the trace");
}

#[test]
fn rsa_trace_same_seed_is_bit_identical() {
    let mut rng = SmallRng::seed_from_u64(9);
    let exp = Bignum::random_bits(&mut rng, 96);
    let cfg = RsaAttackConfig::new(ProbeKind::Flush);
    let victim = build_victim(&cfg);
    let t1 = collect_trace(MicroArch::TigerLake, &victim, &exp, &cfg, 0x51).expect("trace");
    let t2 = collect_trace(MicroArch::TigerLake, &victim, &exp, &cfg, 0x51).expect("trace");
    assert_eq!(t1.samples, t2.samples);
    assert_eq!(t1.victim_cycles, t2.victim_cycles);
    assert_eq!(decode_trace(&t1, exp.bit_len()), decode_trace(&t2, exp.bit_len()));
}

#[test]
fn seeded_rng_stream_is_stable() {
    // The shim's SmallRng must produce the same stream across calls —
    // every experiment seed in the repo depends on this.
    use rand::Rng;
    let mut a = SmallRng::seed_from_u64(2024);
    let mut b = SmallRng::seed_from_u64(2024);
    let va: Vec<u64> = (0..32).map(|_| a.gen()).collect();
    let vb: Vec<u64> = (0..32).map(|_| b.gen()).collect();
    assert_eq!(va, vb);
}
